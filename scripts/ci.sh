#!/usr/bin/env bash
# Tier-1 gate + lint gate + CLI smoke test. Run from the workspace root.
#
#   scripts/ci.sh          # everything (tier-1, clippy, fmt, smoke, soak, bench-smoke, fuzz-smoke, explore-smoke, serve-smoke, serve-soak)
#   scripts/ci.sh tier1    # just the build + test gate
#   scripts/ci.sh lint     # just clippy + rustfmt
#   scripts/ci.sh smoke    # just the compc-check observability smoke test
#   scripts/ci.sh soak     # chaos sweep + deadline smoke (robustness gate)
#   scripts/ci.sh bench-smoke  # E21 kernel table + capped E22 scaling sweep +
#                              # tri-backend verdict equivalence + BENCH schemas
#   scripts/ci.sh fuzz-smoke   # corpus replay + time-budgeted differential
#                              # fuzz (engine vs oracle vs theorem gates)
#   scripts/ci.sh serve-smoke  # compc-serve daemon end-to-end: stream the
#                              # Figure 3 appends, checkpoint restart
#                              # mid-stream, grep the violation verdict,
#                              # two concurrent clients against one daemon
#   scripts/ci.sh serve-soak   # kill-anywhere crash-recovery soak: SIGKILL
#                              # the journaled daemon at random points,
#                              # assert zero acked-append loss and
#                              # bit-identical recovered verdicts
#   scripts/ci.sh explore-smoke # exhaustive sweep at CI bounds with the
#                              # naive counting/constancy cross-checks:
#                              # clean verdicts on every trace-inequivalent
#                              # composite schedule, nonzero class count,
#                              # naive/pruned agreement
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

tier1() {
    echo "==> tier-1: cargo build --release"
    cargo build --release
    echo "==> tier-1: cargo test -q"
    cargo test -q
}

lint() {
    echo "==> lint: cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
    echo "==> lint: cargo fmt --check"
    cargo fmt --check
}

# End-to-end observability smoke: the Figure 3 scenario must fail at level 3
# with a T1/T2 witness cycle, --trace must narrate every reduction level as
# NDJSON, and --explain must name the failing level.
smoke() {
    echo "==> smoke: compc-check --trace --explain on Figure 3"
    cargo build --release -q --bin compc-check
    out="$(./target/release/compc-check examples/figure3_incorrect.json --trace --explain || true)"
    echo "$out" | grep -q '"event":"check_start"' \
        || { echo "smoke: missing check_start trace event" >&2; exit 1; }
    [ "$(echo "$out" | grep -c '"event":"level"')" -eq 3 ] \
        || { echo "smoke: expected 3 level trace events" >&2; exit 1; }
    echo "$out" | grep -q '"failed_level":3' \
        || { echo "smoke: trace does not name failing level 3" >&2; exit 1; }
    echo "$out" | grep -q 'failed at level 3 of 3' \
        || { echo "smoke: --explain does not name failing level 3" >&2; exit 1; }
    echo "$out" | grep -q 'witness cycle: T1 -> T2 -> T1' \
        || { echo "smoke: --explain does not render the witness cycle" >&2; exit 1; }
    echo "==> smoke: OK"
}

# Robustness soak: a fixed-seed chaos sweep of faulted simulator runs
# (every exported schedule must be Comp-C and the sweep must actually
# inject faults — exp_chaos asserts both and aborts otherwise), plus a
# deadline smoke: a tiny --deadline-ms on a large random system must time
# out with exit code 3, not hang, crash or misreport.
soak() {
    echo "==> soak: chaos sweep (60 faulted sims, recovery invariant)"
    cargo build --release -q -p compc-bench --bin exp_chaos
    cargo build --release -q -p compc --bin compc-gen --bin compc-check
    ./target/release/exp_chaos 60 6 \
        || { echo "soak: chaos sweep failed" >&2; exit 1; }
    echo "==> soak: deadline smoke (large random system, --deadline-ms 0)"
    big="$(mktemp /tmp/compc-soak-XXXXXX.json)"
    trap 'rm -f "$big"' EXIT
    ./target/release/compc-gen --shape general --roots 24 --density 0.3 --seed 7 > "$big"
    set +e
    ./target/release/compc-check "$big" --deadline-ms 0 > /dev/null
    code=$?
    set -e
    [ "$code" -eq 3 ] \
        || { echo "soak: expected exit 3 on timeout, got $code" >&2; exit 1; }
    echo "==> soak: OK"
}

# Bitset-backend gate: every kernel backend (sparse BTree, dense bitset,
# compressed chunked + SCC-condensed) must stay verdict-equivalent on a
# random-system spot check, the reduced E21 table and a size-capped E22
# scaling sweep must run clean (their in-process assertions compare the
# backends bit for bit before timing), and the emitted JSON documents must
# match the BENCH_4 and BENCH_7 schemas.
bench_smoke() {
    echo "==> bench-smoke: sparse/dense/compressed verdict equivalence (30 systems)"
    cargo build --release -q -p compc-bench --bin exp_scaling
    ./target/release/exp_scaling --verify 30 \
        || { echo "bench-smoke: backend verdict equivalence failed" >&2; exit 1; }
    echo "==> bench-smoke: reduced E21 kernel table"
    json="$(mktemp /tmp/compc-bench-XXXXXX.json)"
    ./target/release/exp_scaling --kernels-e21 3 --json-out "$json" > /dev/null \
        || { rm -f "$json"; echo "bench-smoke: E21 kernel sweep failed" >&2; exit 1; }
    echo "==> bench-smoke: validating BENCH_4 schema"
    jq -e '
        .bench == "BENCH_4"
        and .experiment == "E21"
        and (.iters | type == "number")
        and (.seed | type == "number")
        and (.crossover_default | type == "number")
        and (.kernels | type == "array" and length > 0)
        and all(.kernels[];
            (.kernel | type == "string")
            and (.nodes | type == "number")
            and (.edges | type == "number")
            and (.btree_ns | type == "number" and . > 0)
            and (.bit_ns | type == "number" and . > 0)
            and (.speedup | type == "number" and . > 0))
    ' "$json" > /dev/null \
        || { rm -f "$json"; echo "bench-smoke: emitted JSON does not match the BENCH_4 schema" >&2; exit 1; }
    echo "==> bench-smoke: capped E22 scaling sweep (4k nodes, all backends)"
    ./target/release/exp_scaling --kernels 2 --max-nodes 4096 --json-out "$json" > /dev/null \
        || { rm -f "$json"; echo "bench-smoke: E22 scaling sweep failed" >&2; exit 1; }
    echo "==> bench-smoke: validating BENCH_7 schema"
    jq -e '
        .bench == "BENCH_7"
        and .experiment == "E22"
        and (.iters | type == "number")
        and (.seed | type == "number")
        and (.dense_crossover_default | type == "number")
        and (.compressed_crossover_default | type == "number")
        and (.mem_budget_bytes | type == "number")
        and (.reach_sample_sources | type == "number")
        and (.kernels | type == "array" and length > 0)
        and all(.kernels[];
            (.kernel | type == "string")
            and (.backend | IN("btree", "dense", "compressed"))
            and (.nodes | type == "number")
            and (.edges | type == "number")
            and ((.mean_ns | type == "number" and . > 0) or (.skipped | type == "string")))
        and (.crossovers | type == "array" and length > 0)
        and all(.crossovers[]; .kernel | type == "string")
    ' "$json" > /dev/null \
        || { rm -f "$json"; echo "bench-smoke: emitted JSON does not match the BENCH_7 schema" >&2; exit 1; }
    rm -f "$json"
    if [ -f BENCH_4.json ]; then
        jq -e '.bench == "BENCH_4" and (.kernels | length > 0)' BENCH_4.json > /dev/null \
            || { echo "bench-smoke: committed BENCH_4.json is malformed" >&2; exit 1; }
    fi
    if [ -f BENCH_7.json ]; then
        # The committed full sweep must carry the memory-wall evidence: a
        # measured compressed closure at >= 100k nodes where plain dense
        # rows were skipped for blowing the memory budget.
        jq -e '
            .bench == "BENCH_7"
            and ([.kernels[] | select(.backend == "compressed"
                    and .nodes >= 100000 and (.mean_ns | type == "number"))] | length > 0)
            and ([.kernels[] | select(.backend == "dense"
                    and .nodes >= 100000 and (.skipped | type == "string"))] | length > 0)
        ' BENCH_7.json > /dev/null \
            || { echo "bench-smoke: committed BENCH_7.json lacks the >=100k compressed-vs-dense evidence" >&2; exit 1; }
    fi
    echo "==> bench-smoke: seconds-scale serve-bench (group commit, 2 shards)"
    cargo build --release -q --bin compc-serve --bin serve-bench
    ./target/release/serve-bench --connections 2 --sessions 2 --dispatch-shards 2 \
        --roots 2 --duration-ms 800 --warmup-ms 150 --batches 1,16 --out "$json" \
        || { rm -f "$json"; echo "bench-smoke: serve-bench run failed" >&2; exit 1; }
    echo "==> bench-smoke: validating BENCH_9 schema"
    jq -e '
        .bench == "BENCH_9"
        and .experiment == "E23"
        and (.seed | type == "number")
        and (.connections | type == "number")
        and (.sessions | type == "number")
        and (.dispatch_shards | type == "number")
        and (.arrival | IN("poisson", "pareto", "uniform"))
        and .journaled == true
        and (.runs | type == "array" and length >= 2)
        and all(.runs[];
            (.commit_batch | type == "number" and . > 0)
            and (.acked_appends | type == "number" and . > 0)
            and (.appends_per_sec | type == "number" and . > 0)
            and (.p50_us | type == "number" and . > 0)
            and (.p99_us | type == "number" and . > 0)
            and (.fsyncs | type == "number" and . > 0))
        and (.speedup_last_vs_first | type == "number" and . > 0)
    ' "$json" > /dev/null \
        || { rm -f "$json"; echo "bench-smoke: emitted JSON does not match the BENCH_9 schema" >&2; exit 1; }
    rm -f "$json"
    if [ -f BENCH_9.json ]; then
        # The committed artifact is the group-commit headline: batch 64
        # must carry at least 3x the acked appends/sec of batch 1 on the
        # same journaled daemon.
        jq -e '
            .bench == "BENCH_9"
            and (.runs | length >= 2)
            and (.runs[0].commit_batch == 1)
            and (.speedup_last_vs_first >= 3)
        ' BENCH_9.json > /dev/null \
            || { echo "bench-smoke: committed BENCH_9.json lacks the >=3x group-commit speedup" >&2; exit 1; }
    fi
    echo "==> bench-smoke: OK"
}

# Differential-oracle gate: replay the committed corpus (every entry must
# get its filename-encoded verdict from both closure backends and the
# brute-force oracle), then fuzz mutated systems for a fixed time budget
# with a fixed seed — the engines, the oracle, and the structural theorem
# gates (SCC/FCC/JCC/CSR) must agree on every system. A disagreement is a
# checker bug: compc-fuzz exits 1 and drops a shrunk reproducer in /tmp;
# triage per TESTING.md.
fuzz_smoke() {
    echo "==> fuzz-smoke: corpus replay + 30 s differential fuzz (seed 1)"
    cargo build --release -q -p compc-fuzz
    ./target/release/compc-fuzz --seed 1 --seconds 30 --corpus tests/corpus \
        || { echo "fuzz-smoke: corpus replay or differential cross-check failed" >&2; exit 1; }
    echo "==> fuzz-smoke: OK"
}

# Daemon gate: split the Figure 3 scenario into per-root append requests,
# stream the first half into a checkpointing compc-serve over TCP (pure
# bash, /dev/tcp), shut it down gracefully, restart it from the checkpoint,
# stream the rest, and require the violation verdict on the final append.
# The daemon must also exit with the documented code 1 (violation served).
serve_smoke() {
    echo "==> serve-smoke: compc-serve checkpoint restart on Figure 3"
    cargo build --release -q --bin compc-serve
    local dir reqs total split port cp log daemon_pid code
    dir="$(mktemp -d /tmp/compc-serve-smoke-XXXXXX)"
    trap 'rm -rf "$dir"' EXIT
    ./target/release/compc-serve --split examples/figure3_incorrect.json > "$dir/requests.ndjson"
    total="$(wc -l < "$dir/requests.ndjson")"
    [ "$total" -ge 2 ] \
        || { echo "serve-smoke: expected >= 2 append fragments, got $total" >&2; exit 1; }
    split=$((total / 2))
    cp="$dir/checkpoint.json"
    log="$dir/daemon.log"

    # One daemon run: starts on a free port, streams the given request
    # lines, sends the shutdown op, and prints the responses. The daemon's
    # exit code lands in $code.
    run_phase() {
        : > "$log"
        # --backend compressed drives the whole stream through the
        # SCC-condensed chunked kernel, so the daemon gate also exercises
        # the newest closure backend end to end.
        ./target/release/compc-serve --listen 127.0.0.1:0 --checkpoint "$cp" \
            --backend compressed 2> "$log" &
        daemon_pid=$!
        port=""
        for _ in $(seq 1 100); do
            port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")"
            [ -n "$port" ] && break
            sleep 0.1
        done
        [ -n "$port" ] || { echo "serve-smoke: daemon never announced its port" >&2; exit 1; }
        exec 3<>"/dev/tcp/127.0.0.1/$port"
        local line response
        while IFS= read -r line; do
            printf '%s\n' "$line" >&3
            IFS= read -r response <&3
            printf '%s\n' "$response"
        done
        printf '{"op": "shutdown"}\n' >&3
        IFS= read -r response <&3
        printf '%s\n' "$response"
        exec 3>&- 3<&-
        set +e
        wait "$daemon_pid"
        code=$?
        set -e
    }

    echo "==> serve-smoke: phase 1 ($split of $total appends, then shutdown)"
    head -n "$split" "$dir/requests.ndjson" > "$dir/phase1.ndjson"
    run_phase < "$dir/phase1.ndjson" > "$dir/phase1.out"
    grep -q '"ok":true' "$dir/phase1.out" \
        || { echo "serve-smoke: phase 1 served no ok response" >&2; exit 1; }
    [ -f "$cp" ] \
        || { echo "serve-smoke: shutdown left no checkpoint" >&2; exit 1; }

    echo "==> serve-smoke: phase 2 (restart from checkpoint, stream the rest)"
    tail -n +"$((split + 1))" "$dir/requests.ndjson" > "$dir/phase2.ndjson"
    run_phase < "$dir/phase2.ndjson" > "$dir/phase2.out"
    grep -q "restored checkpoint" "$log" \
        || { echo "serve-smoke: restarted daemon did not restore the checkpoint" >&2; exit 1; }
    grep -q '"verdict":"not-comp-c"' "$dir/phase2.out" \
        || { echo "serve-smoke: no violation verdict after the full stream" >&2; exit 1; }
    [ "$code" -eq 1 ] \
        || { echo "serve-smoke: expected exit 1 (violation served), got $code" >&2; exit 1; }
    kill -0 "$daemon_pid" 2>/dev/null \
        && { echo "serve-smoke: daemon still running after shutdown" >&2; exit 1; }

    # Phase 3: two clients interleave the same append stream against one
    # fresh daemon while a third connection sits idle — per-connection
    # reader threads mean the idle one cannot stall the active two, and
    # every append still lands in global order.
    echo "==> serve-smoke: phase 3 (two concurrent clients, one daemon)"
    : > "$log"
    ./target/release/compc-serve --listen 127.0.0.1:0 2> "$log" &
    daemon_pid=$!
    port=""
    for _ in $(seq 1 100); do
        port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")"
        [ -n "$port" ] && break
        sleep 0.1
    done
    [ -n "$port" ] || { echo "serve-smoke: phase-3 daemon never announced its port" >&2; exit 1; }
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    exec 4<>"/dev/tcp/127.0.0.1/$port"
    exec 5<>"/dev/tcp/127.0.0.1/$port"   # idle third: connects, never writes
    : > "$dir/phase3.out"
    local i=0 fd response
    while IFS= read -r line; do
        if [ $((i % 2)) -eq 0 ]; then fd=3; else fd=4; fi
        printf '%s\n' "$line" >&"$fd"
        IFS= read -r -u "$fd" response
        printf '%s\n' "$response" >> "$dir/phase3.out"
        i=$((i + 1))
    done < "$dir/requests.ndjson"
    [ "$(grep -c '"ok":true' "$dir/phase3.out")" -eq "$total" ] \
        || { echo "serve-smoke: not every interleaved append was acked" >&2; exit 1; }
    printf '{"op": "stats"}\n' >&3
    IFS= read -r -u 3 response
    printf '%s' "$response" | grep -q '"peak_connections":3' \
        || { echo "serve-smoke: stats did not see 3 concurrent connections: $response" >&2; exit 1; }
    printf '{"op": "shutdown"}\n' >&4
    IFS= read -r -u 4 response
    exec 3>&- 3<&- 4>&- 4<&- 5>&- 5<&-
    set +e
    wait "$daemon_pid"
    code=$?
    set -e
    [ "$code" -eq 1 ] \
        || { echo "serve-smoke: phase 3 expected exit 1, got $code" >&2; exit 1; }

    # Phase 4: two named sessions routed to *distinct* dispatch shards
    # ("left" and "right" differ under FNV-1a mod 2), journaled with group
    # commit, through one hard restart. Session "left" gets the first half
    # of the Figure 3 stream plus the rest after the restart (the violation
    # must surface there); "right" gets the whole stream before the restart
    # and its append count must survive it.
    echo "==> serve-smoke: phase 4 (named sessions on distinct shards, one restart)"
    sed 's/^{"append":/{"session":"left","append":/' "$dir/requests.ndjson" > "$dir/left.ndjson"
    sed 's/^{"append":/{"session":"right","append":/' "$dir/requests.ndjson" > "$dir/right.ndjson"
    local cp4="$dir/p4-checkpoint.json" jr4="$dir/p4-journal.ndjson"

    run_phase4() {
        : > "$log"
        ./target/release/compc-serve --listen 127.0.0.1:0 --checkpoint "$cp4" \
            --journal "$jr4" --commit-batch 8 --dispatch-shards 2 2> "$log" &
        daemon_pid=$!
        port=""
        for _ in $(seq 1 100); do
            port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")"
            [ -n "$port" ] && break
            sleep 0.1
        done
        [ -n "$port" ] || { echo "serve-smoke: phase-4 daemon never announced its port" >&2; exit 1; }
        exec 3<>"/dev/tcp/127.0.0.1/$port"
        local line response
        while IFS= read -r line; do
            printf '%s\n' "$line" >&3
            IFS= read -r response <&3
            printf '%s\n' "$response"
        done
        printf '{"op": "stats", "session": "right"}\n' >&3
        IFS= read -r response <&3
        printf '%s\n' "$response"
        printf '{"op": "shutdown"}\n' >&3
        IFS= read -r response <&3
        exec 3>&- 3<&-
        set +e
        wait "$daemon_pid"
        code=$?
        set -e
    }

    head -n "$split" "$dir/left.ndjson" > "$dir/p4a.ndjson"
    cat "$dir/right.ndjson" >> "$dir/p4a.ndjson"
    run_phase4 < "$dir/p4a.ndjson" > "$dir/p4a.out"
    [ "$(grep -c '"ok":true' "$dir/p4a.out")" -ge "$((split + total))" ] \
        || { echo "serve-smoke: phase 4 did not ack both sessions' appends" >&2; exit 1; }
    grep '"session":"right"' "$dir/p4a.out" | grep -q '"session_appends":'"$total"',' \
        || { echo "serve-smoke: session right did not count $total appends" >&2; exit 1; }
    grep -q '"session": "left"' "$cp4" && grep -q '"session": "right"' "$cp4" \
        || { echo "serve-smoke: multi-session checkpoint lacks the named sessions" >&2; exit 1; }

    tail -n +"$((split + 1))" "$dir/left.ndjson" > "$dir/p4b.ndjson"
    run_phase4 < "$dir/p4b.ndjson" > "$dir/p4b.out"
    grep -q "restored checkpoint" "$log" \
        || { echo "serve-smoke: phase-4 restart did not restore the checkpoint" >&2; exit 1; }
    grep '"verdict":"not-comp-c"' "$dir/p4b.out" | grep -q '"session":"left"' \
        || { echo "serve-smoke: session left lost its violation across the restart" >&2; exit 1; }
    grep '"session":"right"' "$dir/p4b.out" | grep -q '"session_appends":'"$total"',' \
        || { echo "serve-smoke: session right's appends did not survive the restart" >&2; exit 1; }
    [ "$code" -eq 1 ] \
        || { echo "serve-smoke: phase 4 expected exit 1 (violation served), got $code" >&2; exit 1; }
    rm -rf "$dir"
    trap - EXIT
    echo "==> serve-smoke: OK"
}

# Crash-recovery gate: the kill-anywhere soak. A resilient client streams
# a seeded random workload at a journaled daemon while the harness
# SIGKILLs it at uniformly random points (including mid-journal-write,
# mid-compaction, and mid-startup-replay) and restarts it, asserting zero
# acked-append loss after every restart and a bit-identical final verdict
# versus an uninterrupted batch check. CI runs >= 20 kills; run
# `./target/release/serve-soak --kills 200` locally for the full dose.
serve_soak() {
    echo "==> serve-soak: kill-anywhere crash recovery (seeded, 20 kills, batch 8, 2 shards)"
    cargo build --release -q --bin compc-serve --bin serve-soak
    ./target/release/serve-soak --kills 20 --seed 2026 --roots 16 \
        --clients 2 --commit-batch 8 --dispatch-shards 2 \
        || { echo "serve-soak: the durability contract did not hold" >&2; exit 1; }
    echo "==> serve-soak: OK"
}

# Exhaustive-exploration gate: sweep every trace-inequivalent composite
# schedule up to small bounds in --naive mode, so one run asserts (a) a
# clean four-way verdict agreement on every representative (backends,
# oracle, session replay), (b) the sleep-set pruning's counting gates
# against the full naive enumeration, and (c) verdict constancy within
# every trace class. The larger committed artifact lives in
# docs/results/explore_sweep.txt; regenerate it with the flags recorded
# in its own header.
explore_smoke() {
    echo "==> explore-smoke: naive-gated exhaustive sweep (ops<=2 items<=2 nodes<=8)"
    cargo build --release -q -p compc-explore
    out="$(./target/release/compc-explore --max-ops 2 --max-items 2 --max-nodes 8 --naive)" \
        || { echo "explore-smoke: sweep found a disagreement or gate failure" >&2; \
             echo "$out" >&2; exit 1; }
    echo "$out"
    echo "$out" | grep -q 'clean sweep' \
        || { echo "explore-smoke: sweep did not report a clean completion" >&2; exit 1; }
    classes="$(echo "$out" | sed -n 's/^trace classes: \([0-9]*\) per-schedule.*/\1/p')"
    [ -n "$classes" ] && [ "$classes" -gt 0 ] \
        || { echo "explore-smoke: zero trace classes — the enumerator explored nothing" >&2; exit 1; }
    echo "$out" | grep -q 'counts agree with sleep-set classes' \
        || { echo "explore-smoke: naive/pruned count agreement not reported" >&2; exit 1; }
    echo "==> explore-smoke: OK"
}

case "$stage" in
    tier1) tier1 ;;
    lint) lint ;;
    smoke) smoke ;;
    soak) soak ;;
    bench-smoke) bench_smoke ;;
    fuzz-smoke) fuzz_smoke ;;
    serve-smoke) serve_smoke ;;
    serve-soak) serve_soak ;;
    explore-smoke) explore_smoke ;;
    all)
        tier1
        lint
        smoke
        soak
        bench_smoke
        fuzz_smoke
        explore_smoke
        serve_smoke
        serve_soak
        ;;
    *)
        echo "usage: scripts/ci.sh [tier1|lint|smoke|soak|bench-smoke|fuzz-smoke|serve-smoke|serve-soak|explore-smoke|all]" >&2
        exit 2
        ;;
esac

echo "==> ci: OK"
