#!/usr/bin/env bash
# Tier-1 gate + lint gate + CLI smoke test. Run from the workspace root.
#
#   scripts/ci.sh          # everything (tier-1, clippy, fmt, smoke)
#   scripts/ci.sh tier1    # just the build + test gate
#   scripts/ci.sh lint     # just clippy + rustfmt
#   scripts/ci.sh smoke    # just the compc-check observability smoke test
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

tier1() {
    echo "==> tier-1: cargo build --release"
    cargo build --release
    echo "==> tier-1: cargo test -q"
    cargo test -q
}

lint() {
    echo "==> lint: cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
    echo "==> lint: cargo fmt --check"
    cargo fmt --check
}

# End-to-end observability smoke: the Figure 3 scenario must fail at level 3
# with a T1/T2 witness cycle, --trace must narrate every reduction level as
# NDJSON, and --explain must name the failing level.
smoke() {
    echo "==> smoke: compc-check --trace --explain on Figure 3"
    cargo build --release -q --bin compc-check
    out="$(./target/release/compc-check examples/figure3_incorrect.json --trace --explain || true)"
    echo "$out" | grep -q '"event":"check_start"' \
        || { echo "smoke: missing check_start trace event" >&2; exit 1; }
    [ "$(echo "$out" | grep -c '"event":"level"')" -eq 3 ] \
        || { echo "smoke: expected 3 level trace events" >&2; exit 1; }
    echo "$out" | grep -q '"failed_level":3' \
        || { echo "smoke: trace does not name failing level 3" >&2; exit 1; }
    echo "$out" | grep -q 'failed at level 3 of 3' \
        || { echo "smoke: --explain does not name failing level 3" >&2; exit 1; }
    echo "$out" | grep -q 'witness cycle: T1 -> T2 -> T1' \
        || { echo "smoke: --explain does not render the witness cycle" >&2; exit 1; }
    echo "==> smoke: OK"
}

case "$stage" in
    tier1) tier1 ;;
    lint) lint ;;
    smoke) smoke ;;
    all)
        tier1
        lint
        smoke
        ;;
    *)
        echo "usage: scripts/ci.sh [tier1|lint|smoke|all]" >&2
        exit 2
        ;;
esac

echo "==> ci: OK"
