//! `compc-check` — validate and check composite executions from JSON.
//!
//! Single-system mode:
//!
//! ```sh
//! compc-check system.json             # verdict + witness/counterexample
//! compc-check system.json --trace     # also print the reduction fronts
//! compc-check system.json --dot       # also print the forest in DOT
//! compc-check system.json --minimize  # shrink a violation to its core
//! compc-check system.json --jobs 8    # parallelize the within-level checks
//! ```
//!
//! Batch mode — a directory of `*.json` specs, an NDJSON file (one spec per
//! line, `.ndjson`/`.jsonl`), or several paths at once. Systems are checked
//! concurrently on a worker pool and an aggregate throughput line closes the
//! report:
//!
//! ```sh
//! compc-check specs/ --jobs 8
//! compc-check corpus.ndjson --jobs 0    # 0 = one worker per core
//! compc-check a.json b.json c.json
//! ```
//!
//! Exit codes: 0 = all Comp-C, 1 = some system not Comp-C, 2 = invalid
//! input/model (takes precedence).

use compc::core::{Checker, Verdict};
use compc::engine::{Batch, BatchItem};
use compc::spec::SystemSpec;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut jobs: usize = 1;
    let mut trace = false;
    let mut dot = false;
    let mut minimize = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => trace = true,
            "--dot" => dot = true,
            "--minimize" => minimize = true,
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--jobs needs a number (0 = one per core)");
                        return ExitCode::from(2);
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!(
            "usage: compc-check <system.json | dir | corpus.ndjson>... \
             [--jobs N] [--trace] [--dot] [--minimize]"
        );
        return ExitCode::from(2);
    }

    let single = paths.len() == 1 && {
        let p = Path::new(&paths[0]);
        p.is_file() && !is_ndjson(p)
    };
    if single {
        check_single(&paths[0], jobs, trace, dot, minimize)
    } else {
        check_batch(&paths, jobs)
    }
}

fn is_ndjson(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("ndjson") | Some("jsonl")
    )
}

fn load_spec(text: &str) -> Result<compc::model::CompositeSystem, String> {
    let spec = SystemSpec::parse(text).map_err(|e| e.to_string())?;
    spec.build().map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// Single-system mode
// ---------------------------------------------------------------------

fn check_single(path: &str, jobs: usize, trace: bool, dot: bool, minimize: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let system = match load_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "loaded: {} schedules, {} nodes, order N = {}",
        system.schedule_count(),
        system.node_count(),
        system.order()
    );
    if dot {
        println!("{}", system.forest_dot());
    }
    match Checker::new().jobs(jobs).check(&system) {
        Verdict::Correct(proof) => {
            println!("verdict: Comp-C (correct)");
            if trace {
                for f in &proof.fronts {
                    let names: Vec<&str> = f.nodes.iter().map(|&n| system.name(n)).collect();
                    println!("  level-{} front: [{}]", f.level, names.join(", "));
                    for (a, b) in &f.observed {
                        println!("    {} <o {}", system.name(*a), system.name(*b));
                    }
                }
            }
            let witness: Vec<&str> = proof
                .serial_witness
                .iter()
                .map(|&n| system.name(n))
                .collect();
            println!("serial witness: {}", witness.join(" ; "));
            ExitCode::SUCCESS
        }
        Verdict::Incorrect(cex) => {
            println!("verdict: NOT Comp-C");
            println!("{cex}");
            if minimize {
                if let Some(min) = compc::core::minimize(&system) {
                    let names: Vec<&str> = min.roots.iter().map(|&n| system.name(n)).collect();
                    println!(
                        "minimal violating transaction set ({} of {}): {}",
                        min.roots.len(),
                        system.roots().count(),
                        names.join(", ")
                    );
                }
            }
            ExitCode::from(1)
        }
    }
}

// ---------------------------------------------------------------------
// Batch mode
// ---------------------------------------------------------------------

fn check_batch(paths: &[String], jobs: usize) -> ExitCode {
    let mut items: Vec<BatchItem> = Vec::new();
    let mut invalid = 0usize;
    for path in paths {
        if let Err(e) = collect_items(Path::new(path), &mut items, &mut invalid) {
            eprintln!("{path}: {e}");
            invalid += 1;
        }
    }
    if items.is_empty() {
        eprintln!("no checkable systems found");
        return ExitCode::from(2);
    }

    let report = Batch::new().workers(jobs).check_all(items);
    for o in &report.outcomes {
        match &o.verdict {
            Verdict::Correct(_) => println!("{}: Comp-C", o.label),
            Verdict::Incorrect(cex) => println!("{}: NOT Comp-C — {cex}", o.label),
        }
    }
    println!("{}", report.stats);

    if invalid > 0 {
        eprintln!("{invalid} input(s) were invalid");
        ExitCode::from(2)
    } else if report.stats.incorrect > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Expands one path into batch items: directories contribute their `*.json`
/// files (sorted), NDJSON files one item per non-empty line, plain files one
/// item. Invalid specs are reported and counted, not fatal.
fn collect_items(
    path: &Path,
    items: &mut Vec<BatchItem>,
    invalid: &mut usize,
) -> Result<(), String> {
    if path.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| e.to_string())?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
            .collect();
        files.sort();
        for file in files {
            if let Err(e) = collect_items(&file, items, invalid) {
                eprintln!("{}: {e}", file.display());
                *invalid += 1;
            }
        }
        return Ok(());
    }
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let label_base = path.display().to_string();
    if is_ndjson(path) {
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let label = format!("{label_base}:{}", lineno + 1);
            match load_spec(line) {
                Ok(sys) => items.push(BatchItem::new(label, sys)),
                Err(e) => {
                    eprintln!("{label}: {e}");
                    *invalid += 1;
                }
            }
        }
    } else {
        match load_spec(&text) {
            Ok(sys) => items.push(BatchItem::new(label_base, sys)),
            Err(e) => {
                eprintln!("{label_base}: {e}");
                *invalid += 1;
            }
        }
    }
    Ok(())
}
