//! `compc-check` — validate and check a composite execution from JSON.
//!
//! ```sh
//! compc-check system.json             # verdict + witness/counterexample
//! compc-check system.json --trace     # also print the reduction fronts
//! compc-check system.json --dot       # also print the forest in DOT
//! compc-check system.json --minimize  # shrink a violation to its core
//! ```
//!
//! Exit codes: 0 = Comp-C, 1 = not Comp-C, 2 = invalid input/model.

use compc::core::{check, Verdict};
use compc::spec::SystemSpec;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: compc-check <system.json> [--trace] [--dot]");
        return ExitCode::from(2);
    };
    let trace = args.iter().any(|a| a == "--trace");
    let dot = args.iter().any(|a| a == "--dot");
    let minimize = args.iter().any(|a| a == "--minimize");

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spec: SystemSpec = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let system = match spec.build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid composite system: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "loaded: {} schedules, {} nodes, order N = {}",
        system.schedule_count(),
        system.node_count(),
        system.order()
    );
    if dot {
        println!("{}", system.forest_dot());
    }
    match check(&system) {
        Verdict::Correct(proof) => {
            println!("verdict: Comp-C (correct)");
            if trace {
                for f in &proof.fronts {
                    let names: Vec<&str> =
                        f.nodes.iter().map(|&n| system.name(n)).collect();
                    println!("  level-{} front: [{}]", f.level, names.join(", "));
                    for (a, b) in &f.observed {
                        println!("    {} <o {}", system.name(*a), system.name(*b));
                    }
                }
            }
            let witness: Vec<&str> = proof
                .serial_witness
                .iter()
                .map(|&n| system.name(n))
                .collect();
            println!("serial witness: {}", witness.join(" ; "));
            ExitCode::SUCCESS
        }
        Verdict::Incorrect(cex) => {
            println!("verdict: NOT Comp-C");
            println!("{cex}");
            if minimize {
                if let Some(min) = compc::core::minimize(&system) {
                    let names: Vec<&str> =
                        min.roots.iter().map(|&n| system.name(n)).collect();
                    println!(
                        "minimal violating transaction set ({} of {}): {}",
                        min.roots.len(),
                        system.roots().count(),
                        names.join(", ")
                    );
                }
            }
            ExitCode::from(1)
        }
    }
}
