//! `compc-check` — validate and check composite executions from JSON.
//!
//! Single-system mode:
//!
//! ```sh
//! compc-check system.json             # verdict + witness/counterexample
//! compc-check system.json --trace     # NDJSON reduction events, one per level
//! compc-check system.json --stats     # per-level timing/front histograms
//! compc-check system.json --explain   # narrate a failing reduction
//! compc-check system.json --dot       # also print the forest in DOT
//! compc-check system.json --minimize  # shrink a violation to its core
//! compc-check system.json --jobs 8    # parallelize the within-level checks
//! ```
//!
//! Batch mode — a directory of `*.json` specs, an NDJSON file (one spec per
//! line, `.ndjson`/`.jsonl`), or several paths at once. Systems are checked
//! concurrently on a worker pool and an aggregate throughput line closes the
//! report. `--trace`, `--stats`, `--explain` and `--minimize` apply per item
//! (trace lines carry a `"label"` field naming the item); `--dot` is
//! single-system only and is a usage error in batch mode. A system whose
//! check panics is reported as a per-item fault and the rest of the batch
//! still completes:
//!
//! ```sh
//! compc-check specs/ --jobs 8
//! compc-check corpus.ndjson --jobs 0    # 0 = one worker per core
//! compc-check a.json b.json --trace --explain
//! ```
//!
//! Exit codes: 0 = all Comp-C, 1 = some system not Comp-C, 2 = invalid
//! input/model or a faulted check (takes precedence).

use compc::core::{Checker, Verdict};
use compc::engine::{Batch, BatchItem};
use compc::spec::SystemSpec;
use compc::trace::{event_to_ndjson_line, replay, MemorySink, TraceStats};
use std::path::Path;
use std::process::ExitCode;

#[derive(Clone, Copy, Default)]
struct Flags {
    jobs: usize,
    trace: bool,
    stats: bool,
    explain: bool,
    dot: bool,
    minimize: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: compc-check <system.json | dir | corpus.ndjson>... \
         [--jobs N] [--trace] [--stats] [--explain] [--dot] [--minimize]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut flags = Flags {
        jobs: 1,
        ..Flags::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => flags.trace = true,
            "--stats" => flags.stats = true,
            "--explain" => flags.explain = true,
            "--dot" => flags.dot = true,
            "--minimize" => flags.minimize = true,
            "--jobs" => {
                i += 1;
                flags.jobs = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!(
                            "--jobs needs a non-negative number (0 = one per core), got {}",
                            args.get(i).map(String::as_str).unwrap_or("nothing")
                        );
                        return usage();
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    if paths.is_empty() {
        return usage();
    }

    let single = paths.len() == 1 && {
        let p = Path::new(&paths[0]);
        p.is_file() && !is_ndjson(p)
    };
    if single {
        check_single(&paths[0], flags)
    } else {
        if flags.dot {
            eprintln!("--dot renders one system's forest and only applies in single-system mode");
            return usage();
        }
        check_batch(&paths, flags)
    }
}

fn is_ndjson(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("ndjson") | Some("jsonl")
    )
}

fn load_spec(text: &str) -> Result<compc::model::CompositeSystem, String> {
    let spec = SystemSpec::parse(text).map_err(|e| e.to_string())?;
    spec.build().map_err(|e| e.to_string())
}

/// Prints one item's trace as NDJSON, each line tagged with the item label.
fn print_ndjson(label: &str, events: &[compc::trace::TraceEvent]) {
    for event in events {
        println!("{}", event_to_ndjson_line(event, Some(label)));
    }
}

// ---------------------------------------------------------------------
// Single-system mode
// ---------------------------------------------------------------------

fn check_single(path: &str, flags: Flags) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let system = match load_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "loaded: {} schedules, {} nodes, order N = {}",
        system.schedule_count(),
        system.node_count(),
        system.order()
    );
    if flags.dot {
        println!("{}", system.forest_dot());
    }
    let checker = Checker::new().jobs(flags.jobs);
    let verdict = if flags.trace || flags.stats {
        let mut sink = MemorySink::new();
        let verdict = checker.check_traced(&system, &mut sink);
        if flags.trace {
            print_ndjson(path, &sink.events);
        }
        if flags.stats {
            let mut stats = TraceStats::default();
            replay(&sink.events, &mut stats);
            println!("{stats}");
        }
        verdict
    } else {
        checker.check(&system)
    };
    match verdict {
        Verdict::Correct(proof) => {
            println!("verdict: Comp-C (correct)");
            let witness: Vec<&str> = proof
                .serial_witness
                .iter()
                .map(|&n| system.name(n))
                .collect();
            println!("serial witness: {}", witness.join(" ; "));
            ExitCode::SUCCESS
        }
        Verdict::Incorrect(cex) => {
            println!("verdict: NOT Comp-C");
            println!("{cex}");
            if flags.explain {
                println!("{}", cex.explain(&system));
            }
            if flags.minimize && !flags.explain {
                if let Some(min) = compc::core::minimize(&system) {
                    let names: Vec<&str> = min.roots.iter().map(|&n| system.name(n)).collect();
                    println!(
                        "minimal violating transaction set ({} of {}): {}",
                        min.roots.len(),
                        system.roots().count(),
                        names.join(", ")
                    );
                }
            }
            ExitCode::from(1)
        }
    }
}

// ---------------------------------------------------------------------
// Batch mode
// ---------------------------------------------------------------------

fn check_batch(paths: &[String], flags: Flags) -> ExitCode {
    let mut items: Vec<BatchItem> = Vec::new();
    let mut invalid = 0usize;
    for path in paths {
        if let Err(e) = collect_items(Path::new(path), &mut items, &mut invalid) {
            eprintln!("{path}: {e}");
            invalid += 1;
        }
    }
    if items.is_empty() {
        eprintln!("no checkable systems found");
        return ExitCode::from(2);
    }

    // Explaining or minimizing a violation needs the system after the pool
    // consumed the items, so keep a copy per item.
    let systems: Vec<compc::model::CompositeSystem> = if flags.explain || flags.minimize {
        items.iter().map(|it| it.system.clone()).collect()
    } else {
        Vec::new()
    };

    let report = Batch::new()
        .workers(flags.jobs)
        .tracing(flags.trace || flags.stats)
        .check_all(items);
    for (idx, o) in report.outcomes.iter().enumerate() {
        if flags.trace {
            print_ndjson(&o.label, &o.events);
        }
        match &o.result {
            Ok(Verdict::Correct(_)) => println!("{}: Comp-C", o.label),
            Ok(Verdict::Incorrect(cex)) => {
                println!("{}: NOT Comp-C — {cex}", o.label);
                if flags.explain {
                    for line in cex.explain(&systems[idx]).to_string().lines() {
                        println!("  {line}");
                    }
                } else if flags.minimize {
                    if let Some(min) = compc::core::minimize(&systems[idx]) {
                        let names: Vec<&str> =
                            min.roots.iter().map(|&n| systems[idx].name(n)).collect();
                        println!(
                            "  minimal violating transaction set ({} of {}): {}",
                            min.roots.len(),
                            systems[idx].roots().count(),
                            names.join(", ")
                        );
                    }
                }
            }
            Err(fault) => println!("{}: FAULT — {fault}", o.label),
        }
    }
    println!("{}", report.stats);
    if flags.stats {
        println!("{}", report.metrics);
    }

    if invalid > 0 || report.stats.faults > 0 {
        if invalid > 0 {
            eprintln!("{invalid} input(s) were invalid");
        }
        if report.stats.faults > 0 {
            eprintln!("{} check(s) faulted", report.stats.faults);
        }
        ExitCode::from(2)
    } else if report.stats.incorrect > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Expands one path into batch items: directories contribute their `*.json`
/// files (sorted), NDJSON files one item per non-empty line, plain files one
/// item. Invalid specs are reported and counted, not fatal — the remaining
/// lines and files are still checked.
fn collect_items(
    path: &Path,
    items: &mut Vec<BatchItem>,
    invalid: &mut usize,
) -> Result<(), String> {
    if path.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| e.to_string())?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
            .collect();
        files.sort();
        for file in files {
            if let Err(e) = collect_items(&file, items, invalid) {
                eprintln!("{}: {e}", file.display());
                *invalid += 1;
            }
        }
        return Ok(());
    }
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let label_base = path.display().to_string();
    if is_ndjson(path) {
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.trim().is_empty() {
                continue;
            }
            let label = format!("{label_base}:{}", lineno + 1);
            match load_spec(line) {
                Ok(sys) => items.push(BatchItem::new(label, sys)),
                Err(e) => {
                    eprintln!("{label}: {e}");
                    *invalid += 1;
                }
            }
        }
    } else {
        match load_spec(&text) {
            Ok(sys) => items.push(BatchItem::new(label_base, sys)),
            Err(e) => {
                eprintln!("{label_base}: {e}");
                *invalid += 1;
            }
        }
    }
    Ok(())
}
