//! `compc-check` — validate and check composite executions from JSON.
//!
//! Single-system mode:
//!
//! ```sh
//! compc-check system.json             # verdict + witness/counterexample
//! compc-check system.json --trace     # NDJSON reduction events, one per level
//! compc-check system.json --stats     # per-level timing/front histograms
//! compc-check system.json --explain   # narrate a failing reduction
//! compc-check system.json --dot       # also print the forest in DOT
//! compc-check system.json --minimize  # shrink a violation to its core
//! compc-check system.json --jobs 8    # parallelize the within-level checks
//! ```
//!
//! Batch mode — a directory of `*.json` specs, an NDJSON file (one spec per
//! line, `.ndjson`/`.jsonl`), or several paths at once. Systems are checked
//! concurrently on a worker pool and an aggregate throughput line closes the
//! report. `--trace`, `--stats`, `--explain` and `--minimize` apply per item
//! (trace lines carry a `"label"` field naming the item); `--dot` is
//! single-system only and is a usage error in batch mode. A system whose
//! check panics is reported as a per-item fault and the rest of the batch
//! still completes:
//!
//! ```sh
//! compc-check specs/ --jobs 8
//! compc-check corpus.ndjson --jobs 0    # 0 = one worker per core
//! compc-check a.json b.json --trace --explain
//! ```
//!
//! Robustness controls: `--deadline-ms N` bounds each system's check — a
//! check that exceeds the budget is reported as a timeout and the run exits
//! 3 (unless something worse happened). `--checkpoint FILE` (batch mode)
//! appends one `<status>\t<label>` line per finished item so an interrupted
//! corpus run, restarted with the same flag, skips the items already
//! recorded; timeouts and faults are *not* recorded and run again.
//!
//! `--oracle` cross-checks every verdict against the brute-force
//! definitional oracle (`compc::oracle`) on systems within its recommended
//! node cap; a disagreement is an engine bug and exits 2.
//!
//! Exit codes: 0 = all Comp-C, 1 = some system not Comp-C, 2 = invalid
//! input/model, a faulted check, or an engine/oracle disagreement (takes
//! precedence over everything), 3 = some check exceeded `--deadline-ms`
//! (takes precedence over 1).

use compc::core::{Backend, CheckOptions, CheckScratch, Checker, Verdict};
use compc::engine::{Batch, BatchItem, BatchMetrics, BatchStats};
use compc::spec::SystemSpec;
use compc::trace::{event_to_ndjson_line, replay, MemorySink, TraceStats};
use std::collections::HashSet;
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Clone, Default)]
struct Flags {
    jobs: usize,
    trace: bool,
    stats: bool,
    explain: bool,
    dot: bool,
    minimize: bool,
    deadline_ms: Option<u64>,
    checkpoint: Option<String>,
    /// Cross-check every verdict against the brute-force oracle (systems
    /// within `compc::oracle::RECOMMENDED_NODE_CAP` nodes; larger ones are
    /// reported as skipped). A disagreement is an engine bug, exit 2.
    oracle: bool,
    /// Transitive-closure backend from `--backend` (default auto).
    backend: Backend,
}

impl Flags {
    /// The one [`CheckOptions`] every mode checks with — single systems
    /// ([`Checker::with_options`]), batches ([`Batch::with_options`]) and
    /// anything session-shaped all read the same struct, so a flag cannot
    /// mean different things in different modes.
    fn check_options(&self) -> CheckOptions {
        let mut options = CheckOptions::new()
            .jobs(self.jobs)
            .backend(self.backend)
            .oracle(self.oracle);
        if let Some(ms) = self.deadline_ms {
            options = options.deadline(Duration::from_millis(ms));
        }
        options
    }
}

const USAGE: &str = "usage: compc-check <system.json | dir | corpus.ndjson>... \
[--jobs N] [--backend auto|dense|sparse|compressed] [--trace] [--stats] [--explain] \
[--dot] [--minimize] [--oracle] [--deadline-ms N] [--checkpoint FILE]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    eprintln!("run compc-check --help for details and exit codes");
    ExitCode::from(2)
}

fn help() -> ExitCode {
    println!(
        "compc-check {} — Comp-C checker for composite executions",
        version()
    );
    println!();
    println!("{USAGE}");
    println!();
    println!("options:");
    println!("  --jobs N          parallelism: within-level checks (single mode) or");
    println!("                    worker-pool size (batch mode); 0 = one per core");
    println!("  --backend B       transitive-closure backend: auto (size-based");
    println!("                    crossovers, the default), dense (word-parallel");
    println!("                    bitsets everywhere), sparse (per-source DFS");
    println!("                    everywhere), or compressed (chunked rows +");
    println!("                    SCC-condensed closure everywhere); verdicts are");
    println!("                    identical either way, --stats reports which");
    println!("                    backend each check used");
    println!("  --trace           print NDJSON reduction events, one per level");
    println!("  --stats           print per-level timing/front histograms");
    println!("  --explain         narrate a failing reduction");
    println!("  --dot             also print the forest in DOT (single-system only)");
    println!("  --minimize        shrink a violation to its core transaction set");
    println!("  --oracle          cross-check each verdict against the brute-force");
    println!(
        "                    definitional oracle (systems up to {} nodes —",
        compc::oracle::RECOMMENDED_NODE_CAP
    );
    println!("                    larger ones are reported as skipped); an engine/");
    println!("                    oracle disagreement is an engine bug and exits 2");
    println!("  --deadline-ms N   per-system check budget in milliseconds; a check");
    println!("                    that exceeds it is reported as a timeout without");
    println!("                    poisoning the rest of the batch");
    println!("  --checkpoint FILE batch mode: append each finished item's label to");
    println!("                    FILE and, on restart, skip the items already");
    println!("                    recorded so an interrupted corpus run resumes;");
    println!("                    timeouts and faults are not recorded and re-run");
    println!("  --version, -V     print the version and exit");
    println!("  --help, -h        print this help and exit");
    println!();
    println!("exit codes:");
    println!("  0  every checked system is Comp-C");
    println!("  1  at least one system is not Comp-C");
    println!("  2  invalid input/model, a faulted (panicked) check, an engine/");
    println!("     oracle disagreement under --oracle, or a usage error — takes");
    println!("     precedence over every other code");
    println!("  3  at least one check exceeded --deadline-ms (and none faulted)");
    ExitCode::SUCCESS
}

fn version() -> &'static str {
    option_env!("CARGO_PKG_VERSION").unwrap_or("dev")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut flags = Flags {
        jobs: 1,
        ..Flags::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return help(),
            "--version" | "-V" => {
                println!("compc-check {}", version());
                return ExitCode::SUCCESS;
            }
            "--trace" => flags.trace = true,
            "--stats" => flags.stats = true,
            "--explain" => flags.explain = true,
            "--dot" => flags.dot = true,
            "--minimize" => flags.minimize = true,
            "--oracle" => flags.oracle = true,
            "--backend" => {
                i += 1;
                flags.backend = match args.get(i).map(String::as_str).and_then(Backend::parse) {
                    Some(backend) => backend,
                    None => {
                        eprintln!(
                            "--backend needs auto, dense, sparse, or compressed, got {}",
                            args.get(i).map(String::as_str).unwrap_or("nothing")
                        );
                        return usage();
                    }
                };
            }
            "--jobs" => {
                i += 1;
                flags.jobs = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!(
                            "--jobs needs a non-negative number (0 = one per core), got {}",
                            args.get(i).map(String::as_str).unwrap_or("nothing")
                        );
                        return usage();
                    }
                };
            }
            "--deadline-ms" => {
                i += 1;
                flags.deadline_ms = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!(
                            "--deadline-ms needs a number of milliseconds, got {}",
                            args.get(i).map(String::as_str).unwrap_or("nothing")
                        );
                        return usage();
                    }
                };
            }
            "--checkpoint" => {
                i += 1;
                flags.checkpoint = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--checkpoint needs a file path");
                        return usage();
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    if paths.is_empty() {
        return usage();
    }

    let single = paths.len() == 1 && {
        let p = Path::new(&paths[0]);
        p.is_file() && !is_ndjson(p)
    };
    if single {
        if flags.checkpoint.is_some() {
            eprintln!("--checkpoint records batch progress and only applies in batch mode");
            return usage();
        }
        check_single(&paths[0], &flags)
    } else {
        if flags.dot {
            eprintln!("--dot renders one system's forest and only applies in single-system mode");
            return usage();
        }
        check_batch(&paths, &flags)
    }
}

fn is_ndjson(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("ndjson") | Some("jsonl")
    )
}

fn load_spec(text: &str) -> Result<compc::model::CompositeSystem, String> {
    let spec = SystemSpec::parse(text).map_err(|e| e.to_string())?;
    spec.build().map_err(|e| e.to_string())
}

/// Prints one item's trace as NDJSON, each line tagged with the item label.
fn print_ndjson(label: &str, events: &[compc::trace::TraceEvent]) {
    for event in events {
        println!("{}", event_to_ndjson_line(event, Some(label)));
    }
}

/// Formats closure-backend counts, e.g. `dense (4 closures)` or
/// `mixed (dense 3, sparse 2, compressed 1)`.
fn backend_line(dense: u64, sparse: u64, compressed: u64) -> String {
    match (dense, sparse, compressed) {
        (0, 0, 0) => "none (no closures ran)".to_string(),
        (d, 0, 0) => format!("dense ({d} closure{})", plural(d)),
        (0, s, 0) => format!("sparse ({s} closure{})", plural(s)),
        (0, 0, c) => format!("compressed ({c} closure{})", plural(c)),
        (d, s, c) => format!("mixed (dense {d}, sparse {s}, compressed {c})"),
    }
}

fn plural(n: u64) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Cross-checks one verdict against the brute-force oracle. Returns `None`
/// if the system exceeds the oracle's node cap (skipped), `Some(false)` on
/// agreement, `Some(true)` on a disagreement — which is an engine bug.
fn oracle_cross_check(
    system: &compc::model::CompositeSystem,
    engine_correct: bool,
    indent: &str,
) -> Option<bool> {
    let cap = compc::oracle::RECOMMENDED_NODE_CAP;
    if system.node_count() > cap {
        println!(
            "{indent}oracle: skipped ({} nodes exceed the {cap}-node cap)",
            system.node_count()
        );
        return None;
    }
    let accepted = compc::oracle::decide(system).accepted();
    if accepted == engine_correct {
        println!(
            "{indent}oracle: agrees ({})",
            if accepted { "Comp-C" } else { "not Comp-C" }
        );
        Some(false)
    } else {
        println!(
            "{indent}ORACLE DISAGREEMENT: engine says {engine_correct}, oracle says {accepted} \
             — this is an engine bug; please report the input"
        );
        Some(true)
    }
}

// ---------------------------------------------------------------------
// Single-system mode
// ---------------------------------------------------------------------

fn check_single(path: &str, flags: &Flags) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let system = match load_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "loaded: {} schedules, {} nodes, order N = {}",
        system.schedule_count(),
        system.node_count(),
        system.order()
    );
    if flags.dot {
        println!("{}", system.forest_dot());
    }
    let checker = Checker::with_options(flags.check_options());
    let result = if flags.trace || flags.stats {
        let mut sink = MemorySink::new();
        let mut scratch = CheckScratch::new();
        let result = checker.try_check_reusing_traced(&system, &mut scratch, &mut sink);
        if flags.trace {
            print_ndjson(path, &sink.events);
        }
        if flags.stats {
            let mut stats = TraceStats::default();
            replay(&sink.events, &mut stats);
            println!("{stats}");
            let counts = scratch.backend_counts();
            println!(
                "closure backend: {}",
                backend_line(counts.dense, counts.sparse, counts.compressed)
            );
        }
        result
    } else {
        checker.try_check(&system)
    };
    match result {
        Ok(Verdict::Correct(proof)) => {
            println!("verdict: Comp-C (correct)");
            let witness: Vec<&str> = proof
                .serial_witness
                .iter()
                .map(|&n| system.name(n))
                .collect();
            println!("serial witness: {}", witness.join(" ; "));
            if flags.oracle && oracle_cross_check(&system, true, "") == Some(true) {
                return ExitCode::from(2);
            }
            ExitCode::SUCCESS
        }
        Ok(Verdict::Incorrect(cex)) => {
            println!("verdict: NOT Comp-C");
            println!("{cex}");
            if flags.explain {
                println!("{}", cex.explain(&system));
            }
            if flags.minimize {
                if let Some(min) = compc::core::minimize(&system) {
                    let names: Vec<&str> = min.roots.iter().map(|&n| system.name(n)).collect();
                    println!(
                        "minimal violating transaction set ({} of {}): {}",
                        min.roots.len(),
                        system.roots().count(),
                        names.join(", ")
                    );
                }
            }
            if flags.oracle && oracle_cross_check(&system, false, "") == Some(true) {
                return ExitCode::from(2);
            }
            ExitCode::from(1)
        }
        Err(interrupted) => {
            println!("verdict: TIMEOUT — {interrupted}");
            ExitCode::from(3)
        }
    }
}

// ---------------------------------------------------------------------
// Batch mode
// ---------------------------------------------------------------------

fn check_batch(paths: &[String], flags: &Flags) -> ExitCode {
    let mut items: Vec<BatchItem> = Vec::new();
    let mut invalid = 0usize;
    for path in paths {
        if let Err(e) = collect_items(Path::new(path), &mut items, &mut invalid) {
            eprintln!("{path}: {e}");
            invalid += 1;
        }
    }
    if items.is_empty() {
        eprintln!("no checkable systems found");
        return ExitCode::from(2);
    }

    // A checkpoint file records `<status>\t<label>` per finished item
    // (status `ok` or `violation`). On resume, recorded items are skipped
    // and prior violations still count toward the exit code; timeouts and
    // faults were never recorded, so they run again.
    let mut prior_violations = 0usize;
    if let Some(cp) = &flags.checkpoint {
        let mut done: HashSet<String> = HashSet::new();
        match std::fs::read_to_string(cp) {
            Ok(text) => {
                for (lineno, line) in text.lines().enumerate() {
                    let line = line.trim_end_matches('\r');
                    if line.trim().is_empty() {
                        continue;
                    }
                    match line.split_once('\t') {
                        Some(("ok", label)) => {
                            done.insert(label.to_string());
                        }
                        Some(("violation", label)) => {
                            done.insert(label.to_string());
                            prior_violations += 1;
                        }
                        _ => eprintln!(
                            "{cp}:{}: unrecognized checkpoint line, ignoring",
                            lineno + 1
                        ),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!("cannot read checkpoint {cp}: {e}");
                return ExitCode::from(2);
            }
        }
        if !done.is_empty() {
            let before = items.len();
            items.retain(|it| !done.contains(&it.label));
            eprintln!(
                "checkpoint: {} of {before} item(s) already recorded in {cp} \
                 ({prior_violations} prior violation(s)), {} left",
                before - items.len(),
                items.len()
            );
        }
    }
    let mut checkpoint_file = match &flags.checkpoint {
        Some(cp) => match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(cp)
        {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("cannot open checkpoint {cp}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    // Explaining, minimizing, or oracle-checking a verdict needs the system
    // after the pool consumed the items, so keep a copy per item.
    let systems: Vec<compc::model::CompositeSystem> =
        if flags.explain || flags.minimize || flags.oracle {
            items.iter().map(|it| it.system.clone()).collect()
        } else {
            Vec::new()
        };

    // Without a checkpoint everything goes to the pool at once. With one,
    // items run in chunks so progress lands in the file at chunk
    // granularity and a killed run loses at most one chunk of work.
    let chunk_size = if checkpoint_file.is_some() {
        (flags.jobs.max(1) * 4).max(16)
    } else {
        items.len().max(1)
    };
    let mut stats = BatchStats::default();
    let mut metrics = BatchMetrics::default();
    let mut total_dense = 0u64;
    let mut total_sparse = 0u64;
    let mut total_compressed = 0u64;
    let mut oracle_checked = 0u64;
    let mut oracle_skipped = 0u64;
    let mut oracle_disagreements = 0u64;
    let mut remaining = items;
    let mut offset = 0usize;
    while !remaining.is_empty() {
        let rest = remaining.split_off(chunk_size.min(remaining.len()));
        let chunk = std::mem::replace(&mut remaining, rest);
        let chunk_len = chunk.len();
        let batch = Batch::with_options(flags.check_options())
            .workers(flags.jobs)
            .tracing(flags.trace || flags.stats);
        let report = batch.check_all(chunk);
        for (i, o) in report.outcomes.iter().enumerate() {
            let idx = offset + i;
            if flags.trace {
                print_ndjson(&o.label, &o.events);
            }
            // Which closure representation the item's check actually used —
            // only worth a column when the user asked for stats.
            total_dense += o.dense_closures;
            total_sparse += o.sparse_closures;
            total_compressed += o.compressed_closures;
            let backend = if flags.stats {
                format!(" [{}]", o.backend())
            } else {
                String::new()
            };
            match &o.result {
                Ok(Verdict::Correct(_)) => println!("{}: Comp-C{backend}", o.label),
                Ok(Verdict::Incorrect(cex)) => {
                    println!("{}: NOT Comp-C{backend} — {cex}", o.label);
                    if flags.explain {
                        for line in cex.explain(&systems[idx]).to_string().lines() {
                            println!("  {line}");
                        }
                    }
                    if flags.minimize {
                        if let Some(min) = compc::core::minimize(&systems[idx]) {
                            let names: Vec<&str> =
                                min.roots.iter().map(|&n| systems[idx].name(n)).collect();
                            println!(
                                "  minimal violating transaction set ({} of {}): {}",
                                min.roots.len(),
                                systems[idx].roots().count(),
                                names.join(", ")
                            );
                        }
                    }
                }
                Err(fault) if fault.is_timeout() => {
                    println!("{}: TIMEOUT — {fault}", o.label)
                }
                Err(fault) => println!("{}: FAULT — {fault}", o.label),
            }
            if flags.oracle {
                if let Ok(verdict) = &o.result {
                    match oracle_cross_check(&systems[idx], verdict.is_correct(), "  ") {
                        None => oracle_skipped += 1,
                        Some(false) => oracle_checked += 1,
                        Some(true) => {
                            oracle_checked += 1;
                            oracle_disagreements += 1;
                        }
                    }
                }
            }
            if let Some(f) = checkpoint_file.as_mut() {
                let status = match &o.result {
                    Ok(Verdict::Correct(_)) => Some("ok"),
                    Ok(Verdict::Incorrect(_)) => Some("violation"),
                    Err(_) => None, // re-run on resume
                };
                if let Some(status) = status {
                    if let Err(e) = writeln!(f, "{status}\t{}", o.label) {
                        eprintln!("cannot append to checkpoint: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
        if let Some(f) = checkpoint_file.as_mut() {
            let _ = f.flush();
        }
        stats.merge(&report.stats);
        metrics.merge(&report.metrics);
        offset += chunk_len;
    }
    if stats.systems > 0 {
        println!("{stats}");
        if flags.oracle {
            println!(
                "oracle: {oracle_checked} cross-checked, {oracle_skipped} skipped \
                 (over the node cap), {oracle_disagreements} disagreement(s)"
            );
        }
        if flags.stats {
            println!("{metrics}");
            println!(
                "closure backends: {}",
                backend_line(total_dense, total_sparse, total_compressed)
            );
        }
    } else {
        println!("nothing left to check ({prior_violations} prior violation(s) on record)");
    }

    if invalid > 0 || stats.faults > 0 || oracle_disagreements > 0 {
        if invalid > 0 {
            eprintln!("{invalid} input(s) were invalid");
        }
        if stats.faults > 0 {
            eprintln!("{} check(s) faulted", stats.faults);
        }
        if oracle_disagreements > 0 {
            eprintln!("{oracle_disagreements} engine/oracle disagreement(s)");
        }
        ExitCode::from(2)
    } else if stats.timeouts > 0 {
        eprintln!("{} check(s) timed out", stats.timeouts);
        ExitCode::from(3)
    } else if stats.incorrect > 0 || prior_violations > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Expands one path into batch items: directories contribute their `*.json`
/// files (sorted), NDJSON files one item per non-empty line, plain files one
/// item. Invalid specs are reported and counted, not fatal — the remaining
/// lines and files are still checked.
fn collect_items(
    path: &Path,
    items: &mut Vec<BatchItem>,
    invalid: &mut usize,
) -> Result<(), String> {
    if path.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| e.to_string())?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
            .collect();
        files.sort();
        for file in files {
            if let Err(e) = collect_items(&file, items, invalid) {
                eprintln!("{}: {e}", file.display());
                *invalid += 1;
            }
        }
        return Ok(());
    }
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let label_base = path.display().to_string();
    if is_ndjson(path) {
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.trim().is_empty() {
                continue;
            }
            let label = format!("{label_base}:{}", lineno + 1);
            match load_spec(line) {
                Ok(sys) => items.push(BatchItem::new(label, sys)),
                Err(e) => {
                    eprintln!("{label}: {e}");
                    *invalid += 1;
                }
            }
        }
    } else {
        match load_spec(&text) {
            Ok(sys) => items.push(BatchItem::new(label_base, sys)),
            Err(e) => {
                eprintln!("{label_base}: {e}");
                *invalid += 1;
            }
        }
    }
    Ok(())
}
