//! `compc-gen` — emit a random composite system as JSON for `compc-check`.
//!
//! ```sh
//! compc-gen [--shape stack|fork|join|general] [--seed N] [--roots N]
//!           [--density 0.4] > system.json
//! ```

use compc::spec::SystemSpec;
use compc::workload::random::{generate, GenParams, Shape};

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let shape = match arg::<String>("--shape", "general".into()).as_str() {
        "stack" => Shape::Stack { depth: 3 },
        "fork" => Shape::Fork { branches: 3 },
        "join" => Shape::Join { branches: 3 },
        _ => Shape::General {
            levels: 3,
            scheds_per_level: 2,
        },
    };
    let params = GenParams {
        shape,
        roots: arg("--roots", 4),
        ops_per_tx: (1, 3),
        conflict_density: arg("--density", 0.4),
        sequential_tx_prob: 0.7,
        client_input_prob: arg("--client-orders", 0.0),
        strong_input_prob: arg("--strong-orders", 0.0),
        sound_abstractions: std::env::args().any(|a| a == "--sound"),
        seed: arg("--seed", 1),
    };
    let sys = generate(&params);
    let spec = SystemSpec::from_system(&sys);
    println!("{}", spec.to_json().to_pretty());
}
