//! `compc-serve` — long-lived incremental Comp-C checking daemon.
//!
//! Serves a [`compc::session::SpecSession`] over a Unix or TCP socket. The
//! client streams NDJSON requests (one JSON object per line) and receives
//! one NDJSON response line per request:
//!
//! ```text
//! → {"append": {<system-spec fragment, same format compc-check reads>}}
//! ← {"ok": true, "verdict": "comp-c", "appends": 1, "nodes": 6, ...}
//! → {"append": {<more nodes/relations — merged into the session>}}
//! ← {"ok": true, "verdict": "not-comp-c", "level": 1, "phase": "...", ...}
//! → {"op": "stats"}        ← {"ok": true, "appends": 2, ...}
//! → {"op": "checkpoint"}   ← {"ok": true, "checkpoint": "state.json", "saved": true}
//! → {"op": "shutdown"}     ← {"ok": true, "shutdown": true, "saved": false}   (exits)
//! ```
//!
//! Each `append` merges its fragment into the accumulated spec, rebuilds
//! the system, and rechecks it *incrementally* — only the reduction levels
//! the fragment could have changed are recomputed (see `DESIGN.md` §8).
//! Verdicts are bit-identical to a from-scratch `compc-check` run of the
//! merged spec. A failed append (parse, merge, model, or invalid-extension
//! error) leaves the session unchanged: `{"ok": false, "kind": "spec" |
//! "invalid", "error": ...}`. An append that exceeds `--deadline-ms`
//! returns `{"ok": false, "kind": "interrupted", ...}` and keeps the
//! completed levels — re-sending the same fragment resumes where it left
//! off.
//!
//! `--checkpoint FILE` restores the session from FILE at startup (if it
//! exists) and rewrites it after every successful append and on shutdown,
//! so a restarted daemon resumes mid-stream. `--trace` mirrors each
//! append as `compc-trace` NDJSON `check_start`/`check_end` events on
//! stdout for live observability. Clients may connect, disconnect and
//! reconnect; the session persists across connections (`--once` exits
//! after the first connection instead).
//!
//! Exit codes mirror `compc-check`: 0 = clean shutdown, every verdict
//! Comp-C; 1 = clean shutdown, at least one violation verdict served;
//! 2 = usage/socket/checkpoint error or an engine/oracle disagreement
//! under `--oracle` (takes precedence); 3 = at least one append was
//! interrupted by `--deadline-ms` (takes precedence over 1).

use compc::core::{Backend, CheckOptions, SessionError, Verdict};
use compc::json::Value;
use compc::session::{SpecSession, SpecSessionError};
use compc::spec::SystemSpec;
use compc::trace::{event_to_ndjson_line, TraceEvent};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

#[derive(Clone, Default)]
struct Flags {
    socket: Option<String>,
    listen: Option<String>,
    checkpoint: Option<String>,
    jobs: usize,
    backend: Backend,
    deadline_ms: Option<u64>,
    oracle: bool,
    trace: bool,
    once: bool,
}

impl Flags {
    /// The same unified [`CheckOptions`] `compc-check` builds from its
    /// flags — one struct, every mode.
    fn check_options(&self) -> CheckOptions {
        let mut options = CheckOptions::new()
            .jobs(self.jobs)
            .backend(self.backend)
            .oracle(self.oracle);
        if let Some(ms) = self.deadline_ms {
            options = options.deadline(Duration::from_millis(ms));
        }
        options
    }
}

const USAGE: &str = "usage: compc-serve (--socket PATH | --listen ADDR) \
[--jobs N] [--backend auto|dense|sparse|compressed] [--deadline-ms N] [--oracle] \
[--checkpoint FILE] [--trace] [--once]
       compc-serve --split SYSTEM.json";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    eprintln!("run compc-serve --help for the protocol and exit codes");
    ExitCode::from(2)
}

fn help() -> ExitCode {
    println!(
        "compc-serve {} — incremental Comp-C checking daemon",
        version()
    );
    println!();
    println!("{USAGE}");
    println!();
    println!("options:");
    println!("  --socket PATH     listen on a Unix domain socket at PATH (removed");
    println!("                    and re-created at startup, unlinked on shutdown)");
    println!("  --listen ADDR     listen on a TCP address, e.g. 127.0.0.1:7878");
    println!("                    (port 0 picks a free port; the chosen address is");
    println!("                    printed on stderr)");
    println!("  --jobs N          within-level parallelism per append; 0 = one per core");
    println!("  --backend B       transitive-closure backend: auto | dense | sparse |");
    println!("                    compressed");
    println!("  --deadline-ms N   per-append budget; an interrupted append keeps its");
    println!("                    completed levels and resumes when re-sent");
    println!("  --oracle          cross-check every verdict against the brute-force");
    println!("                    oracle (small systems); a disagreement exits 2");
    println!("  --checkpoint FILE restore the session from FILE at startup and");
    println!("                    rewrite it after each successful append");
    println!("  --trace           mirror each append as compc-trace NDJSON events");
    println!("                    (check_start/check_end) on stdout");
    println!("  --once            exit after the first client disconnects");
    println!("  --split FILE      client helper: split a system spec into one");
    println!("                    NDJSON append request line per root subtree");
    println!("                    (ready to pipe into a running daemon) and exit");
    println!("  --version, -V     print the version and exit");
    println!("  --help, -h        print this help and exit");
    println!();
    println!("protocol (NDJSON over the socket, one response line per request):");
    println!("  {{\"append\": {{<spec fragment>}}}}  merge + incremental recheck");
    println!("  {{\"op\": \"stats\"}}                 session work counters");
    println!("  {{\"op\": \"checkpoint\"}}            write the checkpoint file now");
    println!("  {{\"op\": \"shutdown\"}}              save checkpoint (if --checkpoint) and exit;");
    println!("                                  the response's \"saved\" field says whether");
    println!("                                  a checkpoint file was actually written");
    println!();
    println!("exit codes:");
    println!("  0  clean shutdown, every verdict Comp-C");
    println!("  1  clean shutdown, at least one violation verdict served");
    println!("  2  usage, socket, or checkpoint error, or an engine/oracle");
    println!("     disagreement under --oracle — takes precedence");
    println!("  3  at least one append hit --deadline-ms (and nothing worse)");
    ExitCode::SUCCESS
}

fn version() -> &'static str {
    option_env!("CARGO_PKG_VERSION").unwrap_or("dev")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags = Flags {
        jobs: 1,
        ..Flags::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return help(),
            "--version" | "-V" => {
                println!("compc-serve {}", version());
                return ExitCode::SUCCESS;
            }
            "--oracle" => flags.oracle = true,
            "--trace" => flags.trace = true,
            "--once" => flags.once = true,
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(p) => flags.socket = Some(p.clone()),
                    None => {
                        eprintln!("--socket needs a path");
                        return usage();
                    }
                }
            }
            "--listen" => {
                i += 1;
                match args.get(i) {
                    Some(a) => flags.listen = Some(a.clone()),
                    None => {
                        eprintln!("--listen needs an address, e.g. 127.0.0.1:7878");
                        return usage();
                    }
                }
            }
            "--checkpoint" => {
                i += 1;
                match args.get(i) {
                    Some(p) => flags.checkpoint = Some(p.clone()),
                    None => {
                        eprintln!("--checkpoint needs a file path");
                        return usage();
                    }
                }
            }
            "--split" => {
                i += 1;
                match args.get(i) {
                    Some(p) => return split(p),
                    None => {
                        eprintln!("--split needs a system spec file");
                        return usage();
                    }
                }
            }
            "--jobs" => {
                i += 1;
                flags.jobs = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--jobs needs a non-negative number (0 = one per core)");
                        return usage();
                    }
                };
            }
            "--backend" => {
                i += 1;
                flags.backend = match args.get(i).map(String::as_str).and_then(Backend::parse) {
                    Some(backend) => backend,
                    None => {
                        eprintln!(
                            "--backend needs auto, dense, sparse, or compressed, got {}",
                            args.get(i).map(String::as_str).unwrap_or("nothing")
                        );
                        return usage();
                    }
                };
            }
            "--deadline-ms" => {
                i += 1;
                flags.deadline_ms = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--deadline-ms needs a number of milliseconds");
                        return usage();
                    }
                };
            }
            flag => {
                eprintln!("unknown argument {flag}");
                return usage();
            }
        }
        i += 1;
    }
    match (&flags.socket, &flags.listen) {
        (Some(_), Some(_)) => {
            eprintln!("--socket and --listen are mutually exclusive");
            usage()
        }
        (None, None) => {
            eprintln!("one of --socket or --listen is required");
            usage()
        }
        _ => serve(flags),
    }
}

/// `--split`: prints one NDJSON `{"append": ...}` request line per root
/// subtree of the given spec, ready to pipe into a running daemon.
fn split(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spec = match SystemSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    for fragment in spec.into_appends() {
        let request = Value::Object(vec![("append".to_string(), fragment.to_json())]);
        println!("{}", request.to_compact());
    }
    ExitCode::SUCCESS
}

/// Daemon state shared across connections: the session itself plus the
/// outcome counters the exit code is computed from.
struct Daemon {
    session: SpecSession,
    flags: Flags,
    violations: u64,
    interruptions: u64,
    disagreements: u64,
}

enum Control {
    Continue,
    Shutdown,
}

fn serve(flags: Flags) -> ExitCode {
    let session = match &flags.checkpoint {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match SpecSession::from_checkpoint(&text, flags.check_options()) {
                Ok(session) => {
                    eprintln!(
                        "restored checkpoint {path}: {} node(s), {} schedule(s)",
                        session.spec().nodes.len(),
                        session.spec().schedules.len()
                    );
                    session
                }
                Err(e) => {
                    eprintln!("cannot restore checkpoint {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                SpecSession::with_options(flags.check_options())
            }
            Err(e) => {
                eprintln!("cannot read checkpoint {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => SpecSession::with_options(flags.check_options()),
    };
    let mut daemon = Daemon {
        session,
        flags,
        violations: 0,
        interruptions: 0,
        disagreements: 0,
    };

    let outcome = if let Some(path) = daemon.flags.socket.clone() {
        serve_unix(&path, &mut daemon)
    } else {
        let addr = daemon.flags.listen.clone().expect("checked in main");
        serve_tcp(&addr, &mut daemon)
    };
    if let Err(e) = outcome {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    if let Err(e) = daemon.save_checkpoint() {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    if daemon.disagreements > 0 {
        eprintln!("{} engine/oracle disagreement(s)", daemon.disagreements);
        ExitCode::from(2)
    } else if daemon.interruptions > 0 {
        ExitCode::from(3)
    } else if daemon.violations > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn serve_unix(path: &str, daemon: &mut Daemon) -> Result<(), String> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would make bind fail.
    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("cannot remove stale socket {path}: {e}")),
    }
    let listener =
        UnixListener::bind(path).map_err(|e| format!("cannot bind socket {path}: {e}"))?;
    eprintln!("listening on {path}");
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                eprintln!("accept failed: {e}");
                continue;
            }
        };
        let reader = stream
            .try_clone()
            .map_err(|e| format!("cannot clone connection: {e}"))?;
        match handle_client(BufReader::new(reader), stream, daemon) {
            Control::Shutdown => break,
            Control::Continue if daemon.flags.once => break,
            Control::Continue => {}
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn serve_tcp(addr: &str, daemon: &mut Daemon) -> Result<(), String> {
    use std::net::TcpListener;
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    match listener.local_addr() {
        Ok(local) => eprintln!("listening on {local}"),
        Err(_) => eprintln!("listening on {addr}"),
    }
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                eprintln!("accept failed: {e}");
                continue;
            }
        };
        let reader = stream
            .try_clone()
            .map_err(|e| format!("cannot clone connection: {e}"))?;
        match handle_client(BufReader::new(reader), stream, daemon) {
            Control::Shutdown => break,
            Control::Continue if daemon.flags.once => break,
            Control::Continue => {}
        }
    }
    Ok(())
}

/// Serves one connection: one response line per request line. Returns
/// whether the daemon should keep accepting.
fn handle_client<R: Read, W: Write>(
    reader: BufReader<R>,
    mut writer: W,
    daemon: &mut Daemon,
) -> Control {
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("connection read failed: {e}");
                return Control::Continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = daemon.handle_line(&line);
        if writeln!(writer, "{}", response.to_compact()).is_err() || writer.flush().is_err() {
            // The client is gone; any shutdown decision still stands.
            return control;
        }
        if let Control::Shutdown = control {
            return Control::Shutdown;
        }
    }
    Control::Continue
}

fn ok_object(mut fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![("ok".to_string(), Value::from(true))];
    entries.append(&mut fields);
    Value::Object(entries)
}

fn error_object(kind: &str, message: String) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::from(false)),
        ("kind".to_string(), Value::from(kind)),
        ("error".to_string(), Value::from(message)),
    ])
}

impl Daemon {
    /// Dispatches one request line to one response value.
    fn handle_line(&mut self, line: &str) -> (Value, Control) {
        let request = match compc::json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return (
                    error_object("protocol", format!("request is not JSON: {e}")),
                    Control::Continue,
                )
            }
        };
        if let Some(fragment) = request.get("append") {
            return (self.handle_append(fragment), Control::Continue);
        }
        match request.get("op").and_then(Value::as_str) {
            Some("stats") => (self.stats_response(), Control::Continue),
            Some("checkpoint") => match self.save_checkpoint() {
                Ok(true) => {
                    let target = self.flags.checkpoint.clone().expect("saved implies a path");
                    (
                        ok_object(vec![
                            ("checkpoint".to_string(), Value::from(target)),
                            ("saved".to_string(), Value::from(true)),
                        ]),
                        Control::Continue,
                    )
                }
                Ok(false) => (
                    ok_object(vec![
                        (
                            "checkpoint".to_string(),
                            Value::from("(no --checkpoint file configured)"),
                        ),
                        ("saved".to_string(), Value::from(false)),
                    ]),
                    Control::Continue,
                ),
                Err(e) => (error_object("checkpoint", e), Control::Continue),
            },
            // Save *here*, not just in the post-loop epilogue, so the
            // response can report honestly whether state was persisted —
            // without `--checkpoint` nothing is saved and the client is
            // told so instead of the old implied-save silence.
            Some("shutdown") => match self.save_checkpoint() {
                Ok(saved) => (
                    ok_object(vec![
                        ("shutdown".to_string(), Value::from(true)),
                        ("saved".to_string(), Value::from(saved)),
                    ]),
                    Control::Shutdown,
                ),
                // A failing disk must not make the daemon unstoppable: the
                // client gets the error, the daemon still exits.
                Err(e) => {
                    let mut response = error_object("checkpoint", e);
                    if let Value::Object(entries) = &mut response {
                        entries.push(("shutdown".to_string(), Value::from(true)));
                    }
                    (response, Control::Shutdown)
                }
            },
            Some(other) => (
                error_object("protocol", format!("unknown op \"{other}\"")),
                Control::Continue,
            ),
            None => (
                error_object(
                    "protocol",
                    "request must be {\"append\": {...}} or {\"op\": \"...\"}".to_string(),
                ),
                Control::Continue,
            ),
        }
    }

    fn handle_append(&mut self, fragment: &Value) -> Value {
        let fragment = match SystemSpec::from_json(fragment) {
            Ok(spec) => spec,
            Err(e) => return error_object("spec", e.to_string()),
        };
        let started = Instant::now();
        match self.session.append(&fragment) {
            Ok(verdict) => {
                let verdict = verdict.clone();
                let elapsed_ns = started.elapsed().as_nanos() as u64;
                self.emit_trace(&verdict, elapsed_ns);
                if verdict.is_correct() {
                    if let Err(e) = self.save_checkpoint() {
                        return error_object("checkpoint", e);
                    }
                    self.verdict_response(&verdict)
                } else {
                    self.violations += 1;
                    if let Err(e) = self.save_checkpoint() {
                        return error_object("checkpoint", e);
                    }
                    self.verdict_response(&verdict)
                }
            }
            Err(SpecSessionError::Session(SessionError::Interrupted(e))) => {
                self.interruptions += 1;
                let mut response = error_object("interrupted", e.to_string());
                if let Value::Object(entries) = &mut response {
                    entries.push(("resumable".to_string(), Value::from(true)));
                }
                response
            }
            Err(SpecSessionError::OracleDisagreement { engine_correct }) => {
                self.disagreements += 1;
                error_object(
                    "oracle-disagreement",
                    SpecSessionError::OracleDisagreement { engine_correct }.to_string(),
                )
            }
            Err(SpecSessionError::Session(e)) => error_object("invalid", e.to_string()),
            Err(e) => error_object("spec", e.to_string()),
        }
    }

    /// The one verdict line per append: the stats ride along so a client
    /// can watch the incremental path work (`levels_reused` growing).
    fn verdict_response(&self, verdict: &Verdict) -> Value {
        let stats = self.session.stats();
        let mut fields = vec![
            (
                "verdict".to_string(),
                Value::from(if verdict.is_correct() {
                    "comp-c"
                } else {
                    "not-comp-c"
                }),
            ),
            ("appends".to_string(), Value::from(stats.appends)),
        ];
        if let Some(sys) = self.session.system() {
            fields.push(("nodes".to_string(), Value::from(sys.node_count())));
            fields.push(("order".to_string(), Value::from(sys.order())));
        }
        fields.push((
            "levels_reused".to_string(),
            Value::from(stats.levels_reused),
        ));
        fields.push(("rows_spliced".to_string(), Value::from(stats.rows_spliced)));
        if let Verdict::Incorrect(cex) = verdict {
            fields.push(("level".to_string(), Value::from(cex.level)));
            fields.push(("phase".to_string(), Value::from(cex.phase.tag())));
            fields.push(("cycle".to_string(), Value::from(cex.cycle_names.clone())));
        }
        ok_object(fields)
    }

    fn stats_response(&self) -> Value {
        let stats = self.session.stats();
        ok_object(vec![
            ("appends".to_string(), Value::from(stats.appends)),
            (
                "levels_computed".to_string(),
                Value::from(stats.levels_computed),
            ),
            (
                "levels_reused".to_string(),
                Value::from(stats.levels_reused),
            ),
            (
                "rows_recomputed".to_string(),
                Value::from(stats.rows_recomputed),
            ),
            ("rows_spliced".to_string(), Value::from(stats.rows_spliced)),
            ("violations".to_string(), Value::from(self.violations)),
            ("interruptions".to_string(), Value::from(self.interruptions)),
        ])
    }

    /// Mirrors one append as `compc-trace` `check_start`/`check_end`
    /// events on stdout (the socket carries the responses, so stdout is a
    /// pure event stream).
    fn emit_trace(&self, verdict: &Verdict, elapsed_ns: u64) {
        if !self.flags.trace {
            return;
        }
        let Some(sys) = self.session.system() else {
            return;
        };
        let label = format!("append-{}", self.session.stats().appends);
        let start = TraceEvent::CheckStart {
            nodes: sys.node_count(),
            schedules: sys.schedule_count(),
            order: sys.order(),
        };
        let end = match verdict {
            Verdict::Correct(_) => TraceEvent::CheckEnd {
                correct: true,
                levels_completed: sys.order(),
                failed_level: None,
                failed_phase: None,
                elapsed_ns,
            },
            Verdict::Incorrect(cex) => TraceEvent::CheckEnd {
                correct: false,
                levels_completed: cex.level.saturating_sub(1),
                failed_level: Some(cex.level),
                failed_phase: Some(cex.phase.tag()),
                elapsed_ns,
            },
        };
        println!("{}", event_to_ndjson_line(&start, Some(&label)));
        println!("{}", event_to_ndjson_line(&end, Some(&label)));
    }

    /// Atomically rewrites the checkpoint file. Returns whether a file was
    /// actually written (`false` without `--checkpoint`), so callers can
    /// report a save truthfully instead of implying one happened.
    ///
    /// Durability order matters: the temp file is fsynced *before* the
    /// rename (otherwise a crash can leave the rename durable but the
    /// contents not — an empty or truncated "checkpoint"), and the parent
    /// directory is fsynced after so the rename itself survives a crash.
    /// A leftover `.tmp` from a kill mid-write is harmless: restore only
    /// ever reads the real path, and the next save overwrites the temp.
    fn save_checkpoint(&self) -> Result<bool, String> {
        use std::io::Write as _;
        let Some(path) = &self.flags.checkpoint else {
            return Ok(false);
        };
        let tmp = format!("{path}.tmp");
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create checkpoint {tmp}: {e}"))?;
        file.write_all(self.session.checkpoint_json().as_bytes())
            .map_err(|e| format!("cannot write checkpoint {tmp}: {e}"))?;
        file.sync_all()
            .map_err(|e| format!("cannot sync checkpoint {tmp}: {e}"))?;
        drop(file);
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("cannot replace checkpoint {path}: {e}"))?;
        // Make the rename durable too. Directory fsync is best-effort: some
        // filesystems refuse to open directories for writing, and a crash
        // here only loses the newest checkpoint, never corrupts one.
        let dir = std::path::Path::new(path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(|| std::path::Path::new("."));
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(true)
    }
}
