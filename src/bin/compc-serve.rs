//! `compc-serve` — long-lived incremental Comp-C checking daemon.
//!
//! This binary is a thin flag parser over [`compc::serve`], which holds
//! the actual serving core: a concurrent accept/reader/writer edge around
//! state-owning dispatch shards (sessions are routed to shards by a
//! stable hash of their name), per-request panic isolation, a write-ahead
//! append journal with group commit, and overload/drain control (see
//! `DESIGN.md` §8 for the architecture and the durability contract).
//!
//! The protocol is NDJSON over a Unix or TCP socket, one response line per
//! request line:
//!
//! ```text
//! → {"append": {<system-spec fragment, same format compc-check reads>}}
//! ← {"ok": true, "verdict": "comp-c", "appends": 1, "nodes": 6, ...}
//! → {"append": {<more nodes/relations — merged into the session>}}
//! ← {"ok": true, "verdict": "not-comp-c", "level": 1, "phase": "...", ...}
//! → {"op": "stats"}        ← {"ok": true, "appends": 2, "connections": 1, ...}
//! → {"op": "checkpoint"}   ← {"ok": true, "checkpoint": "state.json", "saved": true}
//! → {"op": "shutdown"}     ← {"ok": true, "shutdown": true, "saved": false}   (drains, exits)
//! ```
//!
//! Each `append` merges its fragment into the accumulated spec, rebuilds
//! the system, and rechecks it *incrementally* — verdicts are bit-identical
//! to a from-scratch `compc-check` run of the merged spec. With
//! `--journal FILE` every accepted append is fsynced to a write-ahead
//! journal before its verdict is acked, so **an acked verdict survives any
//! single crash**; `--checkpoint FILE` adds snapshot/restore and journal
//! compaction on top.
//!
//! Exit codes mirror `compc-check`: 0 = clean shutdown, every verdict
//! Comp-C; 1 = clean shutdown, at least one violation verdict served;
//! 2 = usage/socket/checkpoint error, an engine/oracle disagreement under
//! `--oracle`, or an isolated internal fault (takes precedence); 3 = at
//! least one append was interrupted by `--deadline-ms` (takes precedence
//! over 1).

use compc::core::Backend;
use compc::json::Value;
use compc::serve::client::{stream_requests, BackoffPolicy, Target};
use compc::serve::{serve, ServeConfig};
use compc::spec::SystemSpec;
use std::process::ExitCode;

const USAGE: &str = "usage: compc-serve (--socket PATH | --listen ADDR) \
[--jobs N] [--backend auto|dense|sparse|compressed] [--deadline-ms N] [--oracle] \
[--checkpoint FILE] [--journal FILE] [--max-conns N] [--idle-timeout-ms N] \
[--max-line-bytes N] [--drain-timeout-ms N] [--commit-batch N] [--dispatch-shards N] \
[--trace] [--once]
       compc-serve --split SYSTEM.json
       compc-serve --send SYSTEM.json (--socket PATH | --connect ADDR)";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    eprintln!("run compc-serve --help for the protocol and exit codes");
    ExitCode::from(2)
}

fn help() -> ExitCode {
    println!(
        "compc-serve {} — incremental Comp-C checking daemon",
        version()
    );
    println!();
    println!("{USAGE}");
    println!();
    println!("options:");
    println!("  --socket PATH     listen on a Unix domain socket at PATH (a stale");
    println!("                    socket is replaced; anything else at PATH is refused)");
    println!("  --listen ADDR     listen on a TCP address, e.g. 127.0.0.1:7878");
    println!("                    (port 0 picks a free port; the chosen address is");
    println!("                    printed on stderr)");
    println!("  --jobs N          within-level parallelism per append; 0 = one per core");
    println!("  --backend B       transitive-closure backend: auto | dense | sparse |");
    println!("                    compressed");
    println!("  --deadline-ms N   per-append budget; an interrupted append keeps its");
    println!("                    completed levels and resumes when re-sent");
    println!("  --oracle          cross-check every verdict against the brute-force");
    println!("                    oracle (small systems); a disagreement exits 2");
    println!("  --checkpoint FILE restore the session from FILE at startup; rewritten");
    println!("                    on compaction and shutdown (and, without --journal,");
    println!("                    after each successful append)");
    println!("  --journal FILE    write-ahead append journal: every accepted append is");
    println!("                    fsynced to FILE before its verdict is acked, replayed");
    println!("                    past the checkpoint at startup, and truncated when");
    println!("                    the checkpoint op compacts; requires --checkpoint");
    println!("                    (compaction only truncates checkpointed records)");
    println!("  --max-conns N     connections beyond N are shed with a structured");
    println!("                    \"overloaded\" error (default 64)");
    println!("  --idle-timeout-ms N  close connections idle for N ms with a");
    println!("                    \"timeout\" error; 0 = never (default 30000)");
    println!("  --max-line-bytes N   request lines over N bytes are answered with an");
    println!("                    \"oversize\" error and discarded (default 1048576)");
    println!("  --drain-timeout-ms N how long shutdown keeps serving queued requests");
    println!("                    before abandoning them (default 5000)");
    println!("  --commit-batch N  group commit: one journal fsync may cover up to N");
    println!("                    contiguous queued appends, acked together after it");
    println!("                    (default 64; 1 = fsync per append; never weakens the");
    println!("                    ack-after-fsync durability contract)");
    println!("  --dispatch-shards N  dispatch threads; each session lives on the shard");
    println!("                    a stable hash of its name picks, so per-session order");
    println!("                    and lock-free checking are preserved (default 1;");
    println!("                    >1 requires --journal when a --checkpoint is set)");
    println!("  --trace           mirror each append as compc-trace NDJSON events");
    println!("                    (check_start/check_end, plus serve_gauges) on stdout");
    println!("  --once            exit after the first client disconnects");
    println!("  --split FILE      client helper: split a system spec into one");
    println!("                    NDJSON append request line per root subtree");
    println!("                    (ready to pipe into a running daemon) and exit");
    println!("  --send FILE       resilient client: split FILE as --split does and");
    println!("                    stream the appends to a running daemon (--socket or");
    println!("                    --connect), with exponential-backoff reconnects and");
    println!("                    resume-after-restart; prints each response line");
    println!("  --connect ADDR    TCP target for --send, e.g. 127.0.0.1:7878");
    println!("  --inject-panic TOKEN  testing aid: panic on any request line containing");
    println!("                    TOKEN, exercising the panic-isolation path");
    println!("  --version, -V     print the version and exit");
    println!("  --help, -h        print this help and exit");
    println!();
    println!("protocol (NDJSON over the socket, one response line per request):");
    println!("  {{\"append\": {{<spec fragment>}}}}  merge + incremental recheck; with");
    println!("                                  --journal, fsynced before the ack");
    println!("  {{\"session\": \"name\", \"append\": ...}}  address a named session: each");
    println!("                                  session is an independent spec/checker;");
    println!("                                  omitting the field means \"default\"");
    println!("  {{\"op\": \"stats\"}}                 session counters and serving gauges");
    println!("                                  (connections, shed, queue_depth, ...)");
    println!("  {{\"op\": \"checkpoint\"}}            write the checkpoint file now and");
    println!("                                  compact (truncate) the journal");
    println!("  {{\"op\": \"shutdown\"}}              save checkpoint (if --checkpoint), drain,");
    println!("                                  and exit; the response's \"saved\" field says");
    println!("                                  whether a checkpoint file was actually written");
    println!("  (SIGTERM/SIGINT likewise stop accepting, drain in-flight requests");
    println!("   under --drain-timeout-ms, save, and exit)");
    println!();
    println!("error kinds ({{\"ok\": false, \"kind\": ..., \"error\": ...}}):");
    println!("  spec | invalid    the fragment was rejected; session unchanged");
    println!("  interrupted       --deadline-ms hit; resumable, re-send the fragment");
    println!("  overloaded        shed at --max-conns capacity; retry with backoff");
    println!("  oversize          request line over --max-line-bytes; discarded");
    println!("  timeout           connection idle past --idle-timeout-ms; closed");
    println!("  protocol          not JSON / not UTF-8 / unknown op");
    println!("  journal | checkpoint  durability write failed; append not acked");
    println!("  internal          the handler panicked; isolated, session restored");
    println!();
    println!("exit codes:");
    println!("  0  clean shutdown, every verdict Comp-C");
    println!("  1  clean shutdown, at least one violation verdict served");
    println!("  2  usage, socket, or checkpoint error, an engine/oracle");
    println!("     disagreement under --oracle, or an isolated internal");
    println!("     fault — takes precedence");
    println!("  3  at least one append hit --deadline-ms (and nothing worse)");
    ExitCode::SUCCESS
}

fn version() -> &'static str {
    option_env!("CARGO_PKG_VERSION").unwrap_or("dev")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig::default();
    let mut split_file: Option<String> = None;
    let mut send_file: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return help(),
            "--version" | "-V" => {
                println!("compc-serve {}", version());
                return ExitCode::SUCCESS;
            }
            "--oracle" => config.oracle = true,
            "--trace" => config.trace = true,
            "--once" => config.once = true,
            "--socket" => match take(&args, &mut i, "--socket needs a path") {
                Some(p) => config.socket = Some(p),
                None => return usage(),
            },
            "--listen" => match take(
                &args,
                &mut i,
                "--listen needs an address, e.g. 127.0.0.1:7878",
            ) {
                Some(a) => config.listen = Some(a),
                None => return usage(),
            },
            "--checkpoint" => match take(&args, &mut i, "--checkpoint needs a file path") {
                Some(p) => config.checkpoint = Some(p),
                None => return usage(),
            },
            "--journal" => match take(&args, &mut i, "--journal needs a file path") {
                Some(p) => config.journal = Some(p),
                None => return usage(),
            },
            "--split" => match take(&args, &mut i, "--split needs a system spec file") {
                Some(p) => split_file = Some(p),
                None => return usage(),
            },
            "--send" => match take(&args, &mut i, "--send needs a system spec file") {
                Some(p) => send_file = Some(p),
                None => return usage(),
            },
            "--connect" => match take(
                &args,
                &mut i,
                "--connect needs an address, e.g. 127.0.0.1:7878",
            ) {
                Some(a) => connect = Some(a),
                None => return usage(),
            },
            "--inject-panic" => match take(&args, &mut i, "--inject-panic needs a token") {
                Some(t) => config.inject_panic = Some(t),
                None => return usage(),
            },
            "--jobs" => match take_number(&args, &mut i, "--jobs") {
                Some(n) => config.jobs = n as usize,
                None => return usage(),
            },
            "--max-conns" => match take_number(&args, &mut i, "--max-conns") {
                Some(n) if n > 0 => config.max_conns = n as usize,
                _ => {
                    eprintln!("--max-conns needs a positive number");
                    return usage();
                }
            },
            "--idle-timeout-ms" => match take_number(&args, &mut i, "--idle-timeout-ms") {
                Some(n) => config.idle_timeout_ms = n,
                None => return usage(),
            },
            "--max-line-bytes" => match take_number(&args, &mut i, "--max-line-bytes") {
                Some(n) if n > 0 => config.max_line_bytes = n as usize,
                _ => {
                    eprintln!("--max-line-bytes needs a positive number");
                    return usage();
                }
            },
            "--drain-timeout-ms" => match take_number(&args, &mut i, "--drain-timeout-ms") {
                Some(n) => config.drain_timeout_ms = n,
                None => return usage(),
            },
            "--commit-batch" => match take_number(&args, &mut i, "--commit-batch") {
                Some(n) if n > 0 => config.commit_batch = n as usize,
                _ => {
                    eprintln!("--commit-batch needs a positive number");
                    return usage();
                }
            },
            "--dispatch-shards" => match take_number(&args, &mut i, "--dispatch-shards") {
                Some(n) if n > 0 => config.dispatch_shards = n as usize,
                _ => {
                    eprintln!("--dispatch-shards needs a positive number");
                    return usage();
                }
            },
            "--deadline-ms" => match take_number(&args, &mut i, "--deadline-ms") {
                Some(n) => config.deadline_ms = Some(n),
                None => return usage(),
            },
            "--backend" => {
                i += 1;
                config.backend = match args.get(i).map(String::as_str).and_then(Backend::parse) {
                    Some(backend) => backend,
                    None => {
                        eprintln!(
                            "--backend needs auto, dense, sparse, or compressed, got {}",
                            args.get(i).map(String::as_str).unwrap_or("nothing")
                        );
                        return usage();
                    }
                };
            }
            flag => {
                eprintln!("unknown argument {flag}");
                return usage();
            }
        }
        i += 1;
    }
    if let Some(path) = split_file {
        return split(&path);
    }
    if let Some(path) = send_file {
        let target = match (config.socket, connect) {
            (Some(path), None) => Target::Unix(path),
            (None, Some(addr)) => Target::Tcp(addr),
            _ => {
                eprintln!("--send needs exactly one of --socket PATH or --connect ADDR");
                return usage();
            }
        };
        return send(&path, &target);
    }
    match (&config.socket, &config.listen) {
        (Some(_), Some(_)) => {
            eprintln!("--socket and --listen are mutually exclusive");
            usage()
        }
        (None, None) => {
            eprintln!("one of --socket or --listen is required");
            usage()
        }
        _ => match serve(config) {
            Ok(report) => ExitCode::from(report.exit_code()),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        },
    }
}

fn take(args: &[String], i: &mut usize, complaint: &str) -> Option<String> {
    *i += 1;
    match args.get(*i) {
        Some(v) => Some(v.clone()),
        None => {
            eprintln!("{complaint}");
            None
        }
    }
}

fn take_number(args: &[String], i: &mut usize, flag: &str) -> Option<u64> {
    *i += 1;
    match args.get(*i).and_then(|v| v.parse().ok()) {
        Some(n) => Some(n),
        None => {
            eprintln!("{flag} needs a non-negative number");
            None
        }
    }
}

/// `--split`: prints one NDJSON `{"append": ...}` request line per root
/// subtree of the given spec, ready to pipe into a running daemon.
fn split(path: &str) -> ExitCode {
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    for fragment in spec.into_appends() {
        let request = Value::Object(vec![("append".to_string(), fragment.to_json())]);
        println!("{}", request.to_compact());
    }
    ExitCode::SUCCESS
}

/// `--send`: splits like `--split`, then streams the appends to a running
/// daemon through the resilient client (bounded exponential backoff with
/// jitter; after a daemon restart, unacked lines are re-sent).
fn send(path: &str, target: &Target) -> ExitCode {
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let lines: Vec<String> = spec
        .into_appends()
        .into_iter()
        .map(|fragment| {
            Value::Object(vec![("append".to_string(), fragment.to_json())]).to_compact()
        })
        .collect();
    let report = stream_requests(target, &lines, &BackoffPolicy::default(), |_, response| {
        println!("{}", response.to_compact());
    });
    if report.reconnects > 0 {
        eprintln!(
            "reconnected {} time(s), re-sent {} line(s)",
            report.reconnects, report.resent
        );
    }
    if let Some(reason) = report.gave_up {
        eprintln!(
            "gave up after acking {}/{} request(s): {reason}",
            report.acked,
            lines.len()
        );
        return ExitCode::from(2);
    }
    if report.violations > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn load_spec(path: &str) -> Result<SystemSpec, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    SystemSpec::parse(&text).map_err(|e| {
        eprintln!("{path}: {e}");
        ExitCode::from(2)
    })
}
