//! `serve-bench` — open-loop load harness for the `compc-serve` path.
//!
//! Measures what the serve path actually delivers under load: acked
//! appends/sec and ack-latency percentiles through the full daemon stack
//! (socket → reader parse/classify → shard dispatch → incremental check
//! → journal group commit → fsync → ack). The harness spawns its own
//! journaled daemon per configuration, drives it with pipelining
//! connections spread over named sessions, and emits a machine-readable
//! comparison across `--commit-batch` values (default 1 vs 64 — the
//! group-commit speedup) as `BENCH_9.json`.
//!
//! ```text
//! serve-bench [--connections N] [--sessions N] [--dispatch-shards N]
//!             [--batches LIST] [--rate R] [--arrival poisson|pareto|uniform]
//!             [--duration-ms N] [--warmup-ms N] [--roots N] [--spec FILE]
//!             [--seed S] [--out FILE] [--daemon PATH] [--dir DIR]
//! ```
//!
//! The generator is **open-loop** when `--rate` is positive: each
//! connection schedules sends by a Poisson (or heavy-tailed Pareto)
//! arrival process and does not wait for responses, so queueing delay is
//! measured instead of hidden (a closed-loop generator coordinates with
//! the system under test and under-reports latency). `--rate 0` is
//! saturation mode: each connection pipelines as fast as back-pressure
//! admits, measuring peak throughput.
//!
//! Exit code 0 = all configurations ran and the report was written;
//! 2 = harness failure.

use compc::json::Value;
use compc::spec::SystemSpec;
use compc::workload::random::{generate, GenParams, Shape};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Arrival {
    Poisson,
    Pareto,
    Uniform,
}

impl Arrival {
    fn tag(self) -> &'static str {
        match self {
            Arrival::Poisson => "poisson",
            Arrival::Pareto => "pareto",
            Arrival::Uniform => "uniform",
        }
    }
}

struct Args {
    connections: usize,
    sessions: usize,
    dispatch_shards: u64,
    batches: Vec<u64>,
    rate: f64,
    arrival: Arrival,
    duration_ms: u64,
    warmup_ms: u64,
    roots: usize,
    spec: Option<String>,
    seed: u64,
    out: String,
    daemon: Option<String>,
    dir: Option<String>,
}

const USAGE: &str = "usage: serve-bench [--connections N] [--sessions N] [--dispatch-shards N] \
[--batches LIST] [--rate R] [--arrival poisson|pareto|uniform] [--duration-ms N] \
[--warmup-ms N] [--roots N] [--spec FILE] [--seed S] [--out FILE] [--daemon PATH] [--dir DIR]";

fn main() -> ExitCode {
    let mut args = Args {
        connections: 8,
        sessions: 4,
        dispatch_shards: 4,
        batches: vec![1, 64],
        rate: 0.0,
        arrival: Arrival::Poisson,
        duration_ms: 3000,
        warmup_ms: 300,
        roots: 64,
        spec: None,
        seed: 99,
        out: "BENCH_9.json".to_string(),
        daemon: None,
        dir: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                println!();
                println!("open-loop load harness for compc-serve (journal group commit):");
                println!("  --connections N     concurrent client connections (default 8)");
                println!("  --sessions N        named sessions the connections spread over");
                println!("                      (default 4; connection c drives session b<c%N>)");
                println!("  --dispatch-shards N daemon dispatch shards (default 4)");
                println!("  --batches LIST      comma-separated --commit-batch values to compare");
                println!("                      (default 1,64)");
                println!("  --rate R            appends/sec per connection; 0 = saturation");
                println!("                      (pipeline as fast as back-pressure admits)");
                println!("  --arrival A         open-loop inter-arrival law when --rate > 0:");
                println!("                      poisson | pareto (heavy-tailed) | uniform");
                println!("  --duration-ms N     measured window per configuration (default 3000)");
                println!(
                    "  --warmup-ms N       unmeasured lead-in per configuration (default 300)"
                );
                println!("  --roots N           random workload size (root subtrees; default 64)");
                println!("  --spec FILE         drive a spec file's fragments instead of the");
                println!("                      random workload");
                println!("  --seed S            workload + arrival seed (default 99)");
                println!("  --out FILE          report path (default BENCH_9.json)");
                println!("  --daemon P          compc-serve binary (default: sibling of this one)");
                println!("  --dir D             scratch directory for socket/journal/checkpoint");
                println!("                      (default: a fresh temp dir; put it on a real disk");
                println!("                      to measure real fsyncs)");
                return ExitCode::SUCCESS;
            }
            "--connections" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.connections = n as usize,
                _ => return usage("--connections needs a positive number"),
            },
            "--sessions" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.sessions = n as usize,
                _ => return usage("--sessions needs a positive number"),
            },
            "--dispatch-shards" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.dispatch_shards = n,
                _ => return usage("--dispatch-shards needs a positive number"),
            },
            "--batches" => {
                i += 1;
                let parsed: Option<Vec<u64>> = argv.get(i).map(|list| {
                    list.split(',')
                        .filter_map(|part| part.trim().parse().ok())
                        .filter(|&n| n > 0)
                        .collect()
                });
                match parsed {
                    Some(batches) if !batches.is_empty() => args.batches = batches,
                    _ => {
                        return usage("--batches needs a comma-separated list of positive numbers")
                    }
                }
            }
            "--rate" => {
                i += 1;
                match argv.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(r) if r >= 0.0 => args.rate = r,
                    _ => return usage("--rate needs a non-negative number"),
                }
            }
            "--arrival" => {
                i += 1;
                args.arrival = match argv.get(i).map(String::as_str) {
                    Some("poisson") => Arrival::Poisson,
                    Some("pareto") => Arrival::Pareto,
                    Some("uniform") => Arrival::Uniform,
                    _ => return usage("--arrival needs poisson, pareto, or uniform"),
                };
            }
            "--duration-ms" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.duration_ms = n,
                _ => return usage("--duration-ms needs a positive number"),
            },
            "--warmup-ms" => match take_number(&argv, &mut i) {
                Some(n) => args.warmup_ms = n,
                None => return usage("--warmup-ms needs a number"),
            },
            "--roots" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.roots = n as usize,
                _ => return usage("--roots needs a positive number"),
            },
            "--spec" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => args.spec = Some(p.clone()),
                    None => return usage("--spec needs a file path"),
                }
            }
            "--seed" => match take_number(&argv, &mut i) {
                Some(n) => args.seed = n,
                None => return usage("--seed needs a number"),
            },
            "--out" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => args.out = p.clone(),
                    None => return usage("--out needs a file path"),
                }
            }
            "--daemon" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => args.daemon = Some(p.clone()),
                    None => return usage("--daemon needs a path"),
                }
            }
            "--dir" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => args.dir = Some(p.clone()),
                    None => return usage("--dir needs a directory path"),
                }
            }
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    match bench(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve-bench FAILED: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(complaint: &str) -> ExitCode {
    eprintln!("{complaint}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn take_number(argv: &[String], i: &mut usize) -> Option<u64> {
    *i += 1;
    argv.get(*i).and_then(|v| v.parse().ok())
}

fn daemon_binary(args: &Args) -> Result<std::path::PathBuf, String> {
    if let Some(path) = &args.daemon {
        return Ok(std::path::PathBuf::from(path));
    }
    let me = std::env::current_exe().map_err(|e| format!("cannot locate this binary: {e}"))?;
    let sibling = me.with_file_name("compc-serve");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "no compc-serve next to {}; pass --daemon PATH",
            me.display()
        ))
    }
}

/// Deterministic xorshift; `unit()` yields a double in (0, 1].
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn unit(&mut self) -> f64 {
        (((self.next() >> 11) + 1) as f64) / ((1u64 << 53) as f64)
    }
}

/// The next open-loop inter-arrival gap for a per-connection rate.
fn inter_arrival(arrival: Arrival, rate: f64, rng: &mut Rng) -> Duration {
    let mean_s = 1.0 / rate;
    let gap_s = match arrival {
        // Exponential gaps — a Poisson process.
        Arrival::Poisson => -rng.unit().ln() * mean_s,
        // Pareto with alpha = 1.5 (infinite variance, finite mean),
        // scaled so the mean matches the requested rate: bursts and
        // long gaps, the adversarial case for group commit.
        Arrival::Pareto => {
            let alpha = 1.5;
            let xm = mean_s * (alpha - 1.0) / alpha;
            xm * rng.unit().powf(-1.0 / alpha)
        }
        Arrival::Uniform => mean_s,
    };
    Duration::from_secs_f64(gap_s.clamp(0.0, 60.0))
}

/// One measured configuration's results.
struct RunResult {
    commit_batch: u64,
    acked: u64,
    elapsed_ms: f64,
    appends_per_sec: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    fsyncs: u64,
    fsyncs_saved: u64,
    batch_max: u64,
}

fn bench(args: &Args) -> Result<String, String> {
    let daemon = daemon_binary(args)?;
    let lines = Arc::new(request_lines(args)?);
    let scratch_root = match &args.dir {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("compc-bench-{}", std::process::id())),
    };
    let mut runs = Vec::new();
    for &batch in &args.batches {
        let dir = scratch_root.join(format!("batch-{batch}"));
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let result = run_config(args, &daemon, &dir, batch, &lines)
            .map_err(|e| format!("commit-batch {batch}: {e}"));
        let _ = std::fs::remove_dir_all(&dir);
        let run = result?;
        eprintln!(
            "commit-batch {:>4}: {:.0} appends/s, p50 {} us, p95 {} us, p99 {} us, \
             {} fsyncs ({} saved), largest batch {}",
            run.commit_batch,
            run.appends_per_sec,
            run.p50_us,
            run.p95_us,
            run.p99_us,
            run.fsyncs,
            run.fsyncs_saved,
            run.batch_max
        );
        runs.push(run);
    }
    if args.dir.is_none() {
        let _ = std::fs::remove_dir_all(&scratch_root);
    }
    let speedup = speedup_vs_first(&runs);
    write_report(args, &runs, speedup)?;
    let against = runs.first().map_or(0, |r| r.commit_batch);
    Ok(format!(
        "serve-bench: wrote {} ({} configuration(s); last vs --commit-batch {against}: \
         {speedup:.2}x acked appends/sec)",
        args.out,
        runs.len()
    ))
}

/// Throughput of the last configuration over the first (the headline
/// group-commit speedup with the default `--batches 1,64`).
fn speedup_vs_first(runs: &[RunResult]) -> f64 {
    match (runs.first(), runs.last()) {
        (Some(first), Some(last)) if first.appends_per_sec > 0.0 => {
            last.appends_per_sec / first.appends_per_sec
        }
        _ => 0.0,
    }
}

/// The request lines each connection cycles through: the workload spec
/// split into per-root-subtree fragments, one newline-terminated copy per
/// session with its `"session"` field baked in.
fn request_lines(args: &Args) -> Result<Vec<Vec<String>>, String> {
    let fragments = match &args.spec {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --spec {path}: {e}"))?;
            SystemSpec::parse(&text)
                .map_err(|e| format!("--spec {path}: {e}"))?
                .into_appends()
        }
        None => {
            let params = GenParams {
                shape: Shape::General {
                    levels: 3,
                    scheds_per_level: 2,
                },
                roots: args.roots,
                conflict_density: 0.5,
                seed: args.seed,
                ..GenParams::default()
            };
            SystemSpec::from_system(&generate(&params)).into_appends()
        }
    };
    if fragments.is_empty() {
        return Err("the workload produced no append fragments".to_string());
    }
    let mut per_session = Vec::with_capacity(args.sessions);
    for s in 0..args.sessions {
        let session = format!("b{s}");
        let lines = fragments
            .iter()
            .map(|fragment| {
                Value::Object(vec![
                    ("session".to_string(), Value::from(session.as_str())),
                    ("append".to_string(), fragment.to_json()),
                ])
                .to_compact()
                    + "\n"
            })
            .collect();
        per_session.push(lines);
    }
    Ok(per_session)
}

/// Shared per-connection instrumentation.
#[derive(Default)]
struct ConnStats {
    acked: AtomicU64,
    /// Ack latencies (µs) of responses that landed inside the measured
    /// window.
    latencies: Mutex<Vec<u64>>,
}

fn run_config(
    args: &Args,
    daemon: &std::path::Path,
    dir: &std::path::Path,
    commit_batch: u64,
    lines: &Arc<Vec<Vec<String>>>,
) -> Result<RunResult, String> {
    let socket = dir.join("serve.sock").display().to_string();
    let log = dir.join("daemon.log");
    let mut child = spawn_daemon(args, daemon, dir, &socket, commit_batch, &log)?;
    if !wait_for_socket(&socket, Duration::from_secs(20)) {
        let _ = child.kill();
        let _ = child.wait();
        return Err(format!("daemon never came up (log: {})", log.display()));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));
    let stats: Vec<Arc<ConnStats>> = (0..args.connections)
        .map(|_| Arc::new(ConnStats::default()))
        .collect();
    let mut handles = Vec::new();
    for c in 0..args.connections {
        let socket = socket.clone();
        let lines = Arc::clone(lines);
        let stop = Arc::clone(&stop);
        let measuring = Arc::clone(&measuring);
        let stats = Arc::clone(&stats[c]);
        let session = c % args.sessions;
        let rate = args.rate;
        let arrival = args.arrival;
        let seed = (args.seed ^ (c as u64 + 1).wrapping_mul(0x9e37_79b9)) | 1;
        handles.push(std::thread::spawn(move || {
            connection_loop(
                &socket,
                &lines[session],
                rate,
                arrival,
                seed,
                &stop,
                &measuring,
                &stats,
            )
        }));
    }

    std::thread::sleep(Duration::from_millis(args.warmup_ms));
    let acked_before: u64 = stats.iter().map(|s| s.acked.load(Ordering::SeqCst)).sum();
    measuring.store(true, Ordering::SeqCst);
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(args.duration_ms));
    measuring.store(false, Ordering::SeqCst);
    let elapsed = t0.elapsed();
    let acked_after: u64 = stats.iter().map(|s| s.acked.load(Ordering::SeqCst)).sum();
    stop.store(true, Ordering::SeqCst);
    for handle in handles {
        if handle.join().is_err() {
            let _ = child.kill();
            let _ = child.wait();
            return Err("a connection thread panicked".to_string());
        }
    }

    // Daemon-side counters for the report, then a clean shutdown.
    let deadline = Instant::now() + Duration::from_secs(10);
    let gauges = request_until(&socket, r#"{"op": "stats"}"#, deadline)
        .ok_or("no stats response after the run")?;
    let _ = request_until(&socket, r#"{"op": "shutdown"}"#, deadline);
    let _ = child.wait();

    let mut latencies: Vec<u64> = Vec::new();
    for s in &stats {
        latencies.extend(s.latencies.lock().expect("latency lock").iter());
    }
    latencies.sort_unstable();
    let acked = acked_after - acked_before;
    let gauge = |field: &str| gauges.get(field).and_then(Value::as_u64).unwrap_or(0);
    Ok(RunResult {
        commit_batch,
        acked,
        elapsed_ms: elapsed.as_secs_f64() * 1000.0,
        appends_per_sec: acked as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies, 50),
        p95_us: percentile(&latencies, 95),
        p99_us: percentile(&latencies, 99),
        fsyncs: gauge("fsyncs"),
        fsyncs_saved: gauge("fsyncs_saved"),
        batch_max: gauge("batch_max"),
    })
}

/// Nearest-rank percentile over a sorted sample (0 when empty).
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// One pipelining connection: the writer paces sends by the arrival
/// process (or saturates under a bounded pipeline) while a scoped reader
/// thread drains responses, matching ack latencies FIFO — sound because a
/// connection drives exactly one session, so the daemon acks its requests
/// in send order.
#[allow(clippy::too_many_arguments)]
fn connection_loop(
    socket: &str,
    lines: &[String],
    rate: f64,
    arrival: Arrival,
    seed: u64,
    stop: &AtomicBool,
    measuring: &AtomicBool,
    stats: &ConnStats,
) {
    let Ok(read_half) = UnixStream::connect(socket) else {
        return;
    };
    let _ = read_half.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(mut write_half) = read_half.try_clone() else {
        return;
    };
    // Send timestamps of in-flight requests, pushed before the write and
    // popped per response line.
    let pending: Mutex<VecDeque<Instant>> = Mutex::new(VecDeque::new());
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut reader = BufReader::new(&read_half);
            let mut response = String::new();
            loop {
                response.clear();
                match reader.read_line(&mut response) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                let Some(sent) = pending.lock().expect("pending lock").pop_front() else {
                    break;
                };
                stats.acked.fetch_add(1, Ordering::SeqCst);
                if measuring.load(Ordering::Relaxed) {
                    let us = sent.elapsed().as_micros() as u64;
                    stats.latencies.lock().expect("latency lock").push(us);
                }
            }
        });

        let mut rng = Rng(seed);
        let mut next_at = Instant::now();
        let mut index = 0usize;
        while !stop.load(Ordering::Relaxed) {
            if rate > 0.0 {
                // Open loop: wait out the scheduled gap in small slices so
                // a long heavy-tailed gap still notices `stop`.
                let now = Instant::now();
                if next_at > now {
                    std::thread::sleep((next_at - now).min(Duration::from_millis(20)));
                    continue;
                }
                next_at += inter_arrival(arrival, rate, &mut rng);
            } else {
                // Saturation: keep the pipeline deep but bounded, so
                // memory stays flat and latency reflects daemon queueing
                // rather than an unbounded client-side backlog.
                if pending.lock().expect("pending lock").len() >= 256 {
                    std::thread::sleep(Duration::from_micros(50));
                    continue;
                }
            }
            pending
                .lock()
                .expect("pending lock")
                .push_back(Instant::now());
            if write_half
                .write_all(lines[index % lines.len()].as_bytes())
                .is_err()
            {
                pending.lock().expect("pending lock").pop_back();
                break;
            }
            index += 1;
        }
        // Half-close: the daemon tears the connection down on EOF, which
        // ends its writer and gives our reader EOF in turn.
        let _ = write_half.shutdown(Shutdown::Write);
    });
}

fn spawn_daemon(
    args: &Args,
    daemon: &std::path::Path,
    dir: &std::path::Path,
    socket: &str,
    commit_batch: u64,
    log: &std::path::Path,
) -> Result<Child, String> {
    let stderr = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(log)
        .map_err(|e| format!("cannot open {}: {e}", log.display()))?;
    let checkpoint = dir.join("state.json").display().to_string();
    let journal = dir.join("journal.ndjson").display().to_string();
    Command::new(daemon)
        .args([
            "--socket",
            socket,
            "--checkpoint",
            &checkpoint,
            "--journal",
            &journal,
            "--commit-batch",
            &commit_batch.to_string(),
            "--dispatch-shards",
            &args.dispatch_shards.to_string(),
            "--max-conns",
            &(args.connections + 8).to_string(),
            "--idle-timeout-ms",
            "0",
            "--drain-timeout-ms",
            "2000",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(stderr)
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", daemon.display()))
}

fn wait_for_socket(socket: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if UnixStream::connect(socket).is_ok() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn request_until(socket: &str, line: &str, deadline: Instant) -> Option<Value> {
    loop {
        if let Some(value) = request_once(socket, line) {
            return Some(value);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn request_once(socket: &str, line: &str) -> Option<Value> {
    let mut stream = UnixStream::connect(socket).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).ok()?;
    compc::json::parse(response.trim_end()).ok()
}

fn write_report(args: &Args, runs: &[RunResult], speedup: f64) -> Result<(), String> {
    let run_objects: Vec<Value> = runs
        .iter()
        .map(|run| {
            Value::Object(vec![
                ("commit_batch".to_string(), Value::from(run.commit_batch)),
                ("acked_appends".to_string(), Value::from(run.acked)),
                ("elapsed_ms".to_string(), Value::from(run.elapsed_ms)),
                (
                    "appends_per_sec".to_string(),
                    Value::from(run.appends_per_sec),
                ),
                ("p50_us".to_string(), Value::from(run.p50_us)),
                ("p95_us".to_string(), Value::from(run.p95_us)),
                ("p99_us".to_string(), Value::from(run.p99_us)),
                ("fsyncs".to_string(), Value::from(run.fsyncs)),
                ("fsyncs_saved".to_string(), Value::from(run.fsyncs_saved)),
                ("batch_max".to_string(), Value::from(run.batch_max)),
            ])
        })
        .collect();
    let report = Value::Object(vec![
        ("bench".to_string(), Value::from("BENCH_9")),
        ("experiment".to_string(), Value::from("E23")),
        ("generated_by".to_string(), Value::from("serve-bench")),
        ("seed".to_string(), Value::from(args.seed)),
        ("connections".to_string(), Value::from(args.connections)),
        ("sessions".to_string(), Value::from(args.sessions)),
        (
            "dispatch_shards".to_string(),
            Value::from(args.dispatch_shards),
        ),
        ("arrival".to_string(), Value::from(args.arrival.tag())),
        ("rate_per_conn".to_string(), Value::from(args.rate)),
        ("duration_ms".to_string(), Value::from(args.duration_ms)),
        ("warmup_ms".to_string(), Value::from(args.warmup_ms)),
        ("journaled".to_string(), Value::from(true)),
        ("runs".to_string(), Value::Array(run_objects)),
        ("speedup_last_vs_first".to_string(), Value::from(speedup)),
    ]);
    std::fs::write(&args.out, report.to_pretty() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", args.out))
}
