//! `serve-soak` — kill-anywhere crash-recovery soak for `compc-serve`.
//!
//! Proves the daemon's durability contract ("an acked verdict survives any
//! single crash") by doing its best to break it: a resilient client
//! streams a random append workload at a journaled daemon while this
//! harness SIGKILLs the daemon at uniformly random points — including
//! mid-journal-write, mid-compaction (the workload interleaves
//! `checkpoint` ops), and mid-startup-replay (kills may land before the
//! socket even appears) — then restarts it and asserts, after every
//! single restart, that no acked append was lost. When the workload
//! completes, the final verdict is compared field-by-field against a
//! from-scratch batch check of the merged system: recovery must be
//! bit-identical, not merely non-lossy.
//!
//! ```text
//! serve-soak [--kills N] [--seed S] [--roots N] [--daemon PATH] [--keep]
//! ```
//!
//! Exit code 0 = the contract held across all N kills; 2 = a lost acked
//! append, a verdict mismatch, or a harness failure (the daemon's stderr
//! log tail is printed).

use compc::json::Value;
use compc::serve::client::{stream_requests, BackoffPolicy, Target};
use compc::spec::SystemSpec;
use compc::workload::random::{generate, GenParams, Shape};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    kills: u64,
    seed: u64,
    roots: usize,
    daemon: Option<String>,
    keep: bool,
}

const USAGE: &str = "usage: serve-soak [--kills N] [--seed S] [--roots N] [--daemon PATH] [--keep]";

fn main() -> ExitCode {
    let mut args = Args {
        kills: 200,
        seed: 42,
        roots: 24,
        daemon: None,
        keep: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                println!();
                println!("kill-anywhere crash-recovery soak for compc-serve:");
                println!("  --kills N    SIGKILLs to inject across rounds (default 200)");
                println!("  --seed S     workload + kill-timing seed (default 42)");
                println!("  --roots N    root subtrees per round's system (default 24)");
                println!("  --daemon P   compc-serve binary (default: sibling of this one)");
                println!("  --keep       keep the scratch directories for triage");
                return ExitCode::SUCCESS;
            }
            "--kills" => match take_number(&argv, &mut i) {
                Some(n) => args.kills = n,
                None => return usage("--kills needs a number"),
            },
            "--seed" => match take_number(&argv, &mut i) {
                Some(n) => args.seed = n,
                None => return usage("--seed needs a number"),
            },
            "--roots" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.roots = n as usize,
                _ => return usage("--roots needs a positive number"),
            },
            "--daemon" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => args.daemon = Some(p.clone()),
                    None => return usage("--daemon needs a path"),
                }
            }
            "--keep" => args.keep = true,
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    match soak(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve-soak FAILED: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(complaint: &str) -> ExitCode {
    eprintln!("{complaint}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn take_number(argv: &[String], i: &mut usize) -> Option<u64> {
    *i += 1;
    argv.get(*i).and_then(|v| v.parse().ok())
}

/// The daemon binary under test: `--daemon`, or `compc-serve` next to this
/// harness (both live in the same cargo target directory).
fn daemon_binary(args: &Args) -> Result<std::path::PathBuf, String> {
    if let Some(path) = &args.daemon {
        return Ok(std::path::PathBuf::from(path));
    }
    let me = std::env::current_exe().map_err(|e| format!("cannot locate this binary: {e}"))?;
    let sibling = me.with_file_name("compc-serve");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "no compc-serve next to {}; pass --daemon PATH",
            me.display()
        ))
    }
}

/// Deterministic xorshift for kill timing — the whole soak replays from
/// one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn soak(args: &Args) -> Result<String, String> {
    let daemon = daemon_binary(args)?;
    let mut rng = Rng(args.seed | 1);
    let mut kills_done: u64 = 0;
    let mut rounds: u64 = 0;
    while kills_done < args.kills {
        rounds += 1;
        let budget = args.kills - kills_done;
        let round_seed = args.seed.wrapping_add(rounds.wrapping_mul(0x9e37_79b9));
        kills_done += run_round(args, &daemon, round_seed, budget, &mut rng)
            .map_err(|e| format!("round {rounds} (seed {round_seed}): {e}"))?;
        eprintln!("round {rounds} complete: {kills_done}/{} kills", args.kills);
    }
    Ok(format!(
        "serve-soak PASSED: {kills_done} kill(s) over {rounds} round(s), \
         zero acked-append loss, bit-identical recovered verdicts"
    ))
}

/// One round: a fresh scratch state, one random workload driven to
/// completion through up to `budget` kills. Returns the kills injected.
fn run_round(
    args: &Args,
    daemon: &std::path::Path,
    round_seed: u64,
    budget: u64,
    rng: &mut Rng,
) -> Result<u64, String> {
    let dir =
        std::env::temp_dir().join(format!("compc-soak-{}-{round_seed:x}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let result = run_round_in(args, daemon, round_seed, budget, rng, &dir);
    if result.is_ok() && !args.keep {
        let _ = std::fs::remove_dir_all(&dir);
    } else if result.is_err() {
        eprintln!("scratch state kept for triage: {}", dir.display());
        print_log_tail(&dir.join("daemon.log"));
    }
    result
}

fn run_round_in(
    args: &Args,
    daemon: &std::path::Path,
    round_seed: u64,
    budget: u64,
    rng: &mut Rng,
    dir: &std::path::Path,
) -> Result<u64, String> {
    let socket = dir.join("serve.sock").display().to_string();
    let checkpoint = dir.join("state.json").display().to_string();
    let journal = dir.join("journal.ndjson").display().to_string();
    let log = dir.join("daemon.log");

    // The workload: one random system split into per-root-subtree append
    // fragments, with a compaction op every few appends so kills can land
    // mid-compaction too.
    let params = GenParams {
        shape: Shape::General {
            levels: 3,
            scheds_per_level: 2,
        },
        roots: args.roots,
        conflict_density: 0.5,
        seed: round_seed,
        ..GenParams::default()
    };
    let sys = generate(&params);
    let fragments = SystemSpec::from_system(&sys).into_appends();
    let mut lines = Vec::new();
    let mut last_append_line = String::new();
    for (index, fragment) in fragments.iter().enumerate() {
        let request = Value::Object(vec![("append".to_string(), fragment.to_json())]);
        last_append_line = request.to_compact();
        lines.push(last_append_line.clone());
        if index % 5 == 4 {
            lines.push(r#"{"op": "checkpoint"}"#.to_string());
        }
    }

    // The ground truth recovery must reproduce: a from-scratch batch check
    // of the merged system, exactly as the session would build it.
    let mut merged = SystemSpec {
        auto_propagate: false,
        ..SystemSpec::default()
    };
    for fragment in &fragments {
        merged
            .merge(fragment)
            .map_err(|e| format!("workload fragments do not merge: {e}"))?;
    }
    let expected = compc::check(
        &merged
            .build()
            .map_err(|e| format!("workload does not build: {e}"))?,
    );

    // The client thread: the same resilient client `compc-serve --send`
    // uses, recording the highest acked append counter and the last
    // verdict response.
    let max_acked = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let last_verdict: Arc<Mutex<Option<Value>>> = Arc::new(Mutex::new(None));
    let client = {
        let socket = socket.clone();
        let lines = lines.clone();
        let max_acked = Arc::clone(&max_acked);
        let done = Arc::clone(&done);
        let last_verdict = Arc::clone(&last_verdict);
        let policy = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(250),
            max_attempts: 2000,
            io_timeout: Duration::from_secs(30),
            seed: round_seed ^ 0xc11e,
        };
        std::thread::spawn(move || {
            let report = stream_requests(&Target::Unix(socket), &lines, &policy, |_, response| {
                if response.get("verdict").is_some() {
                    if let Some(appends) = response.get("appends").and_then(Value::as_u64) {
                        max_acked.fetch_max(appends, Ordering::SeqCst);
                    }
                    *last_verdict.lock().expect("verdict lock") = Some(response.clone());
                }
            });
            done.store(true, Ordering::SeqCst);
            report
        })
    };

    // The kill loop: spawn, pick a uniformly random time-to-kill (which
    // may elapse before the socket appears — killing mid-startup-replay),
    // verify zero loss after each successful startup, kill, repeat. The
    // window grows with each kill so the round always finishes.
    let mut kills: u64 = 0;
    let mut acked_at_kill: u64 = 0;
    let mut child = spawn_daemon(daemon, &socket, &checkpoint, &journal, &log)?;
    let outcome = loop {
        if kills < budget && !done.load(Ordering::SeqCst) {
            // Small windows so kills land mid-workload (and mid-replay:
            // the window may elapse before the socket appears); growing
            // with each kill so the round always finishes eventually.
            let window_ms = 4 + 8 * kills.min(120) + rng.below(36);
            let deadline = Instant::now() + Duration::from_millis(window_ms);
            let booted = wait_for_socket_until(&socket, deadline);
            if booted {
                // Zero-loss assertion: everything acked before the last
                // kill must already be recovered in this incarnation.
                let recovered = stats_appends(&socket, deadline)?;
                if recovered < acked_at_kill {
                    break Err(format!(
                        "LOST ACKED APPENDS after kill {kills}: daemon recovered \
                         {recovered} append(s) but the client had {acked_at_kill} acked"
                    ));
                }
                while Instant::now() < deadline && !done.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            if done.load(Ordering::SeqCst) {
                continue; // fall through to the completion path below
            }
            let _ = child.kill();
            let _ = child.wait();
            kills += 1;
            acked_at_kill = max_acked.load(Ordering::SeqCst);
            child = spawn_daemon(daemon, &socket, &checkpoint, &journal, &log)?;
            continue;
        }
        // Out of kill budget (or workload already done): let the client
        // finish against a stable daemon.
        if !wait_for_socket_until(&socket, Instant::now() + Duration::from_secs(20)) {
            break Err("daemon never came up for the completion phase".to_string());
        }
        let join_deadline = Instant::now() + Duration::from_secs(120);
        while !done.load(Ordering::SeqCst) {
            if Instant::now() > join_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if !done.load(Ordering::SeqCst) {
            break Err("client did not finish within 120s of the last kill".to_string());
        }
        break Ok(());
    };

    let report = client
        .join()
        .map_err(|_| "client thread panicked".to_string())?;
    outcome?;
    if let Some(reason) = report.gave_up {
        return Err(format!(
            "client gave up at {}/{} acked: {reason}",
            report.acked,
            lines.len()
        ));
    }

    // Bit-identical recovery: one more crash, then the recovered daemon
    // must answer a re-sent final fragment with exactly the batch verdict.
    let _ = child.kill();
    let _ = child.wait();
    let mut child = spawn_daemon(daemon, &socket, &checkpoint, &journal, &log)?;
    if !wait_for_socket_until(&socket, Instant::now() + Duration::from_secs(20)) {
        return Err("daemon never came up for the final verdict check".to_string());
    }
    let final_deadline = Instant::now() + Duration::from_secs(30);
    let response = request_until(&socket, &last_append_line, final_deadline)
        .ok_or("no response to the final re-sent append")?;
    verify_verdict("recovered daemon", &response, &expected)?;
    if let Some(last) = last_verdict.lock().expect("verdict lock").as_ref() {
        verify_verdict("last in-flight ack", last, &expected)?;
    }
    let _ = request_until(&socket, r#"{"op": "shutdown"}"#, final_deadline);
    let _ = child.wait();
    Ok(kills)
}

fn spawn_daemon(
    daemon: &std::path::Path,
    socket: &str,
    checkpoint: &str,
    journal: &str,
    log: &std::path::Path,
) -> Result<Child, String> {
    let stderr = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(log)
        .map_err(|e| format!("cannot open {}: {e}", log.display()))?;
    Command::new(daemon)
        .args([
            "--socket",
            socket,
            "--checkpoint",
            checkpoint,
            "--journal",
            journal,
            "--drain-timeout-ms",
            "2000",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(stderr)
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", daemon.display()))
}

fn wait_for_socket_until(socket: &str, deadline: Instant) -> bool {
    loop {
        if UnixStream::connect(socket).is_ok() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One request, one response, on a throwaway connection (retried until
/// `deadline` — the daemon may still be replaying its journal).
fn request_until(socket: &str, line: &str, deadline: Instant) -> Option<Value> {
    loop {
        if let Some(value) = request_once(socket, line) {
            return Some(value);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn request_once(socket: &str, line: &str) -> Option<Value> {
    let mut stream = UnixStream::connect(socket).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).ok()?;
    compc::json::parse(response.trim_end()).ok()
}

/// The recovered `appends` counter, for the zero-loss assertion.
fn stats_appends(socket: &str, deadline: Instant) -> Result<u64, String> {
    let response = request_until(socket, r#"{"op": "stats"}"#, deadline)
        .ok_or("no stats response after restart")?;
    response
        .get("appends")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("stats response without appends: {}", response.to_compact()))
}

/// Field-by-field comparison of a served verdict response against the
/// batch-check ground truth: verdict string, and for violations the
/// failing level, phase tag, and cycle names.
fn verify_verdict(what: &str, response: &Value, expected: &compc::Verdict) -> Result<(), String> {
    let got = response
        .get("verdict")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{what}: no verdict in {}", response.to_compact()))?;
    let want = if expected.is_correct() {
        "comp-c"
    } else {
        "not-comp-c"
    };
    if got != want {
        return Err(format!("{what}: verdict {got}, batch check says {want}"));
    }
    if let compc::Verdict::Incorrect(cex) = expected {
        let level = response.get("level").and_then(Value::as_u64);
        if level != Some(cex.level as u64) {
            return Err(format!(
                "{what}: failing level {level:?}, batch check says {}",
                cex.level
            ));
        }
        let phase = response.get("phase").and_then(Value::as_str);
        if phase != Some(cex.phase.tag()) {
            return Err(format!(
                "{what}: failing phase {phase:?}, batch check says {}",
                cex.phase.tag()
            ));
        }
        let cycle: Vec<&str> = response
            .get("cycle")
            .and_then(Value::as_array)
            .map(|items| items.iter().filter_map(Value::as_str).collect())
            .unwrap_or_default();
        let want_cycle: Vec<&str> = cex.cycle_names.iter().map(String::as_str).collect();
        if cycle != want_cycle {
            return Err(format!(
                "{what}: cycle {cycle:?}, batch check says {want_cycle:?}"
            ));
        }
    }
    Ok(())
}

fn print_log_tail(log: &std::path::Path) {
    if let Ok(text) = std::fs::read_to_string(log) {
        let lines: Vec<&str> = text.lines().collect();
        let tail = lines.len().saturating_sub(20);
        eprintln!("--- daemon log tail ({}) ---", log.display());
        for line in &lines[tail..] {
            eprintln!("{line}");
        }
    }
}
