//! `serve-soak` — kill-anywhere crash-recovery soak for `compc-serve`.
//!
//! Proves the daemon's durability contract ("an acked verdict survives any
//! single crash") by doing its best to break it: resilient clients stream
//! random append workloads — one client per session, across multiple
//! dispatch shards, with journal group commit enabled — while this
//! harness SIGKILLs the daemon at uniformly random points, including
//! mid-batch-write, mid-compaction (the workload interleaves
//! `checkpoint` ops), and mid-startup-replay (kills may land before the
//! socket even appears) — then restarts it and asserts, after every
//! single restart and for every session, that no acked append was lost
//! *and* that nothing the clients never delivered materialized
//! (`acked <= recovered <= delivered`). When the workload completes, each
//! session's final verdict is compared field-by-field against a
//! from-scratch batch check of its merged system: recovery must be
//! bit-identical, not merely non-lossy.
//!
//! ```text
//! serve-soak [--kills N] [--seed S] [--roots N] [--clients N]
//!            [--commit-batch N] [--dispatch-shards N] [--daemon PATH] [--keep]
//! ```
//!
//! Exit code 0 = the contract held across all N kills; 2 = a lost acked
//! append, a verdict mismatch, or a harness failure (the daemon's stderr
//! log tail is printed).

use compc::json::Value;
use compc::serve::client::{stream_requests_observed, BackoffPolicy, Target};
use compc::spec::SystemSpec;
use compc::workload::random::{generate, GenParams, Shape};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    kills: u64,
    seed: u64,
    roots: usize,
    clients: usize,
    commit_batch: u64,
    dispatch_shards: u64,
    daemon: Option<String>,
    keep: bool,
}

const USAGE: &str = "usage: serve-soak [--kills N] [--seed S] [--roots N] [--clients N] \
[--commit-batch N] [--dispatch-shards N] [--daemon PATH] [--keep]";

fn main() -> ExitCode {
    let mut args = Args {
        kills: 200,
        seed: 42,
        roots: 24,
        clients: 2,
        commit_batch: 64,
        dispatch_shards: 2,
        daemon: None,
        keep: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                println!();
                println!("kill-anywhere crash-recovery soak for compc-serve:");
                println!("  --kills N           SIGKILLs to inject across rounds (default 200)");
                println!("  --seed S            workload + kill-timing seed (default 42)");
                println!("  --roots N           root subtrees per round, split across clients");
                println!("                      (default 24)");
                println!("  --clients N         concurrent clients; client 1 drives the default");
                println!("                      session (the legacy protocol), the rest drive");
                println!("                      named sessions (default 2)");
                println!("  --commit-batch N    daemon group-commit batch size (default 64)");
                println!("  --dispatch-shards N daemon dispatch shards (default 2)");
                println!("  --daemon P          compc-serve binary (default: sibling of this one)");
                println!("  --keep              keep the scratch directories for triage");
                return ExitCode::SUCCESS;
            }
            "--kills" => match take_number(&argv, &mut i) {
                Some(n) => args.kills = n,
                None => return usage("--kills needs a number"),
            },
            "--seed" => match take_number(&argv, &mut i) {
                Some(n) => args.seed = n,
                None => return usage("--seed needs a number"),
            },
            "--roots" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.roots = n as usize,
                _ => return usage("--roots needs a positive number"),
            },
            "--clients" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.clients = n as usize,
                _ => return usage("--clients needs a positive number"),
            },
            "--commit-batch" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.commit_batch = n,
                _ => return usage("--commit-batch needs a positive number"),
            },
            "--dispatch-shards" => match take_number(&argv, &mut i) {
                Some(n) if n > 0 => args.dispatch_shards = n,
                _ => return usage("--dispatch-shards needs a positive number"),
            },
            "--daemon" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => args.daemon = Some(p.clone()),
                    None => return usage("--daemon needs a path"),
                }
            }
            "--keep" => args.keep = true,
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    match soak(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve-soak FAILED: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(complaint: &str) -> ExitCode {
    eprintln!("{complaint}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn take_number(argv: &[String], i: &mut usize) -> Option<u64> {
    *i += 1;
    argv.get(*i).and_then(|v| v.parse().ok())
}

/// The daemon binary under test: `--daemon`, or `compc-serve` next to this
/// harness (both live in the same cargo target directory).
fn daemon_binary(args: &Args) -> Result<std::path::PathBuf, String> {
    if let Some(path) = &args.daemon {
        return Ok(std::path::PathBuf::from(path));
    }
    let me = std::env::current_exe().map_err(|e| format!("cannot locate this binary: {e}"))?;
    let sibling = me.with_file_name("compc-serve");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "no compc-serve next to {}; pass --daemon PATH",
            me.display()
        ))
    }
}

/// Deterministic xorshift for kill timing — the whole soak replays from
/// one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn soak(args: &Args) -> Result<String, String> {
    let daemon = daemon_binary(args)?;
    let mut rng = Rng(args.seed | 1);
    let mut kills_done: u64 = 0;
    let mut rounds: u64 = 0;
    while kills_done < args.kills {
        rounds += 1;
        let budget = args.kills - kills_done;
        let round_seed = args.seed.wrapping_add(rounds.wrapping_mul(0x9e37_79b9));
        kills_done += run_round(args, &daemon, round_seed, budget, &mut rng)
            .map_err(|e| format!("round {rounds} (seed {round_seed}): {e}"))?;
        eprintln!("round {rounds} complete: {kills_done}/{} kills", args.kills);
    }
    Ok(format!(
        "serve-soak PASSED: {kills_done} kill(s) over {rounds} round(s), {} session(s) per \
         round, commit batch {}, {} shard(s): zero acked-append loss, bit-identical \
         recovered verdicts",
        args.clients, args.commit_batch, args.dispatch_shards
    ))
}

/// One round: a fresh scratch state, one random workload per client driven
/// to completion through up to `budget` kills. Returns the kills injected.
fn run_round(
    args: &Args,
    daemon: &std::path::Path,
    round_seed: u64,
    budget: u64,
    rng: &mut Rng,
) -> Result<u64, String> {
    let dir =
        std::env::temp_dir().join(format!("compc-soak-{}-{round_seed:x}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let result = run_round_in(args, daemon, round_seed, budget, rng, &dir);
    if result.is_ok() && !args.keep {
        let _ = std::fs::remove_dir_all(&dir);
    } else if result.is_err() {
        eprintln!("scratch state kept for triage: {}", dir.display());
        print_log_tail(&dir.join("daemon.log"));
    }
    result
}

/// One client's slice of a round: its session, its request lines, and the
/// batch-check ground truth its final verdict must reproduce.
struct Plan {
    /// `None` = the default session, addressed with pre-multi-session
    /// request lines (no `"session"` field at all).
    session: Option<String>,
    lines: Vec<String>,
    /// Which lines are appends (`delivered` counts only these).
    is_append: Vec<bool>,
    last_append_line: String,
    expected: compc::Verdict,
}

/// What the harness observes about one client while it runs.
#[derive(Default)]
struct Tracker {
    /// Highest acked per-session `appends` counter.
    max_acked: AtomicU64,
    /// Append lines handed to a socket write (first sends and re-sends),
    /// the upper bound on what the daemon can have durably applied.
    delivered: AtomicU64,
    done: AtomicBool,
    last_verdict: Mutex<Option<Value>>,
}

fn build_plan(args: &Args, round_seed: u64, client: usize) -> Result<Plan, String> {
    let session = if client == 0 {
        None
    } else {
        Some(format!("s{client}"))
    };
    let params = GenParams {
        shape: Shape::General {
            levels: 3,
            scheds_per_level: 2,
        },
        roots: (args.roots / args.clients.max(1)).max(4),
        conflict_density: 0.5,
        seed: round_seed ^ ((client as u64 + 1).wrapping_mul(0x9e37_79b9)),
        ..GenParams::default()
    };
    let sys = generate(&params);
    let fragments = SystemSpec::from_system(&sys).into_appends();
    let mut lines = Vec::new();
    let mut is_append = Vec::new();
    let mut last_append_line = String::new();
    for (index, fragment) in fragments.iter().enumerate() {
        let mut entries = Vec::new();
        if let Some(name) = &session {
            entries.push(("session".to_string(), Value::from(name.as_str())));
        }
        entries.push(("append".to_string(), fragment.to_json()));
        last_append_line = Value::Object(entries).to_compact();
        lines.push(last_append_line.clone());
        is_append.push(true);
        // A compaction op every few appends, so kills can land
        // mid-compaction; sent with the session field so the reader's
        // session routing is exercised on op lines too.
        if index % 5 == 4 {
            lines.push(op_line(session.as_deref(), "checkpoint"));
            is_append.push(false);
        }
    }
    let mut merged = SystemSpec {
        auto_propagate: false,
        ..SystemSpec::default()
    };
    for fragment in &fragments {
        merged
            .merge(fragment)
            .map_err(|e| format!("workload fragments do not merge: {e}"))?;
    }
    let expected = compc::check(
        &merged
            .build()
            .map_err(|e| format!("workload does not build: {e}"))?,
    );
    Ok(Plan {
        session,
        lines,
        is_append,
        last_append_line,
        expected,
    })
}

fn op_line(session: Option<&str>, op: &str) -> String {
    match session {
        None => format!(r#"{{"op": "{op}"}}"#),
        Some(name) => format!(r#"{{"session": "{name}", "op": "{op}"}}"#),
    }
}

fn run_round_in(
    args: &Args,
    daemon: &std::path::Path,
    round_seed: u64,
    budget: u64,
    rng: &mut Rng,
    dir: &std::path::Path,
) -> Result<u64, String> {
    let socket = dir.join("serve.sock").display().to_string();
    let checkpoint = dir.join("state.json").display().to_string();
    let journal = dir.join("journal.ndjson").display().to_string();
    let log = dir.join("daemon.log");

    let plans: Vec<Plan> = (0..args.clients)
        .map(|c| build_plan(args, round_seed, c))
        .collect::<Result<_, _>>()?;
    let trackers: Vec<Arc<Tracker>> = (0..args.clients)
        .map(|_| Arc::new(Tracker::default()))
        .collect();

    // One client thread per session: the same resilient client
    // `compc-serve --send` uses, recording per-session acked and
    // delivered counters and the last verdict response.
    let clients: Vec<_> = plans
        .iter()
        .zip(&trackers)
        .enumerate()
        .map(|(c, (plan, tracker))| {
            let socket = socket.clone();
            let lines = plan.lines.clone();
            let is_append = plan.is_append.clone();
            let tracker = Arc::clone(tracker);
            let policy = BackoffPolicy {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(250),
                max_attempts: 2000,
                io_timeout: Duration::from_secs(30),
                seed: round_seed ^ 0xc11e ^ (c as u64),
            };
            std::thread::spawn(move || {
                let report = stream_requests_observed(
                    &Target::Unix(socket),
                    &lines,
                    &policy,
                    |index| {
                        if is_append[index] {
                            tracker.delivered.fetch_add(1, Ordering::SeqCst);
                        }
                    },
                    |_, response| {
                        if response.get("verdict").is_some() {
                            if let Some(appends) = response.get("appends").and_then(Value::as_u64) {
                                tracker.max_acked.fetch_max(appends, Ordering::SeqCst);
                            }
                            *tracker.last_verdict.lock().expect("verdict lock") =
                                Some(response.clone());
                        }
                    },
                );
                tracker.done.store(true, Ordering::SeqCst);
                report
            })
        })
        .collect();
    let all_done =
        |trackers: &[Arc<Tracker>]| trackers.iter().all(|t| t.done.load(Ordering::SeqCst));

    // The kill loop: spawn, pick a uniformly random time-to-kill (which
    // may elapse before the socket appears — killing mid-startup-replay),
    // verify per-session zero loss after each successful startup, kill,
    // repeat. The window grows with each kill so the round always
    // finishes.
    let mut kills: u64 = 0;
    let mut acked_at_kill: Vec<u64> = vec![0; args.clients];
    let mut child = spawn_daemon(args, daemon, &socket, &checkpoint, &journal, &log)?;
    let outcome = loop {
        if kills < budget && !all_done(&trackers) {
            // Small windows so kills land mid-workload (and mid-replay:
            // the window may elapse before the socket appears); growing
            // with each kill so the round always finishes eventually.
            let window_ms = 4 + 8 * kills.min(120) + rng.below(36);
            let deadline = Instant::now() + Duration::from_millis(window_ms);
            let booted = wait_for_socket_until(&socket, deadline);
            if booted {
                // The durability sandwich, per session: everything acked
                // before the last kill must already be recovered in this
                // incarnation, and nothing can be recovered that was
                // never delivered (the delivered counter is read *after*
                // the stats response, so it bounds everything the stats
                // could have seen).
                for (c, plan) in plans.iter().enumerate() {
                    let recovered = session_appends(&socket, plan.session.as_deref(), deadline)?;
                    let session = plan.session.as_deref().unwrap_or("default");
                    if recovered < acked_at_kill[c] {
                        break_err(&mut child);
                        return Err(format!(
                            "LOST ACKED APPENDS after kill {kills}: session {session} \
                             recovered {recovered} append(s) but its client had {} acked",
                            acked_at_kill[c]
                        ));
                    }
                    let delivered = trackers[c].delivered.load(Ordering::SeqCst);
                    if recovered > delivered {
                        break_err(&mut child);
                        return Err(format!(
                            "PHANTOM APPENDS after kill {kills}: session {session} \
                             recovered {recovered} append(s) but its client only ever \
                             delivered {delivered}"
                        ));
                    }
                }
                while Instant::now() < deadline && !all_done(&trackers) {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            if all_done(&trackers) {
                continue; // fall through to the completion path below
            }
            let _ = child.kill();
            let _ = child.wait();
            kills += 1;
            for (c, tracker) in trackers.iter().enumerate() {
                acked_at_kill[c] = tracker.max_acked.load(Ordering::SeqCst);
            }
            child = spawn_daemon(args, daemon, &socket, &checkpoint, &journal, &log)?;
            continue;
        }
        // Out of kill budget (or workload already done): let the clients
        // finish against a stable daemon.
        if !wait_for_socket_until(&socket, Instant::now() + Duration::from_secs(20)) {
            break Err("daemon never came up for the completion phase".to_string());
        }
        let join_deadline = Instant::now() + Duration::from_secs(120);
        while !all_done(&trackers) {
            if Instant::now() > join_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if !all_done(&trackers) {
            break Err("clients did not finish within 120s of the last kill".to_string());
        }
        break Ok(());
    };

    let mut reports = Vec::new();
    for client in clients {
        reports.push(
            client
                .join()
                .map_err(|_| "client thread panicked".to_string())?,
        );
    }
    outcome?;
    for (c, report) in reports.iter().enumerate() {
        if let Some(reason) = &report.gave_up {
            return Err(format!(
                "client {c} gave up at {}/{} acked: {reason}",
                report.acked,
                plans[c].lines.len()
            ));
        }
    }

    // Bit-identical recovery: one more crash, then the recovered daemon
    // must answer each session's re-sent final fragment with exactly the
    // batch verdict of that session's merged system.
    let _ = child.kill();
    let _ = child.wait();
    let mut child = spawn_daemon(args, daemon, &socket, &checkpoint, &journal, &log)?;
    if !wait_for_socket_until(&socket, Instant::now() + Duration::from_secs(20)) {
        return Err("daemon never came up for the final verdict check".to_string());
    }
    let final_deadline = Instant::now() + Duration::from_secs(30);
    for (c, plan) in plans.iter().enumerate() {
        let session = plan.session.as_deref().unwrap_or("default");
        let response = request_until(&socket, &plan.last_append_line, final_deadline)
            .ok_or_else(|| format!("no response to session {session}'s re-sent final append"))?;
        verify_verdict(
            &format!("recovered daemon, session {session}"),
            &response,
            &plan.expected,
        )?;
        if let Some(last) = trackers[c]
            .last_verdict
            .lock()
            .expect("verdict lock")
            .as_ref()
        {
            verify_verdict(
                &format!("last in-flight ack, session {session}"),
                last,
                &plan.expected,
            )?;
        }
    }
    let _ = request_until(&socket, &op_line(None, "shutdown"), final_deadline);
    let _ = child.wait();
    Ok(kills)
}

/// Kill the daemon before reporting a contract violation, so a failing
/// soak never leaks a live process.
fn break_err(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

fn spawn_daemon(
    args: &Args,
    daemon: &std::path::Path,
    socket: &str,
    checkpoint: &str,
    journal: &str,
    log: &std::path::Path,
) -> Result<Child, String> {
    let stderr = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(log)
        .map_err(|e| format!("cannot open {}: {e}", log.display()))?;
    Command::new(daemon)
        .args([
            "--socket",
            socket,
            "--checkpoint",
            checkpoint,
            "--journal",
            journal,
            "--drain-timeout-ms",
            "2000",
            "--commit-batch",
            &args.commit_batch.to_string(),
            "--dispatch-shards",
            &args.dispatch_shards.to_string(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(stderr)
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", daemon.display()))
}

fn wait_for_socket_until(socket: &str, deadline: Instant) -> bool {
    loop {
        if UnixStream::connect(socket).is_ok() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One request, one response, on a throwaway connection (retried until
/// `deadline` — the daemon may still be replaying its journal).
fn request_until(socket: &str, line: &str, deadline: Instant) -> Option<Value> {
    loop {
        if let Some(value) = request_once(socket, line) {
            return Some(value);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn request_once(socket: &str, line: &str) -> Option<Value> {
    let mut stream = UnixStream::connect(socket).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).ok()?;
    compc::json::parse(response.trim_end()).ok()
}

/// The recovered per-session `session_appends` counter, for the zero-loss
/// assertion.
fn session_appends(socket: &str, session: Option<&str>, deadline: Instant) -> Result<u64, String> {
    let response = request_until(socket, &op_line(session, "stats"), deadline)
        .ok_or("no stats response after restart")?;
    response
        .get("session_appends")
        .and_then(Value::as_u64)
        .ok_or_else(|| {
            format!(
                "stats response without session_appends: {}",
                response.to_compact()
            )
        })
}

/// Field-by-field comparison of a served verdict response against the
/// batch-check ground truth: verdict string, and for violations the
/// failing level, phase tag, and cycle names.
fn verify_verdict(what: &str, response: &Value, expected: &compc::Verdict) -> Result<(), String> {
    let got = response
        .get("verdict")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{what}: no verdict in {}", response.to_compact()))?;
    let want = if expected.is_correct() {
        "comp-c"
    } else {
        "not-comp-c"
    };
    if got != want {
        return Err(format!("{what}: verdict {got}, batch check says {want}"));
    }
    if let compc::Verdict::Incorrect(cex) = expected {
        let level = response.get("level").and_then(Value::as_u64);
        if level != Some(cex.level as u64) {
            return Err(format!(
                "{what}: failing level {level:?}, batch check says {}",
                cex.level
            ));
        }
        let phase = response.get("phase").and_then(Value::as_str);
        if phase != Some(cex.phase.tag()) {
            return Err(format!(
                "{what}: failing phase {phase:?}, batch check says {}",
                cex.phase.tag()
            ));
        }
        let cycle: Vec<&str> = response
            .get("cycle")
            .and_then(Value::as_array)
            .map(|items| items.iter().filter_map(Value::as_str).collect())
            .unwrap_or_default();
        let want_cycle: Vec<&str> = cex.cycle_names.iter().map(String::as_str).collect();
        if cycle != want_cycle {
            return Err(format!(
                "{what}: cycle {cycle:?}, batch check says {want_cycle:?}"
            ));
        }
    }
    Ok(())
}

fn print_log_tail(log: &std::path::Path) {
    if let Ok(text) = std::fs::read_to_string(log) {
        let lines: Vec<&str> = text.lines().collect();
        let tail = lines.len().saturating_sub(20);
        eprintln!("--- daemon log tail ({}) ---", log.display());
        for line in &lines[tail..] {
            eprintln!("{line}");
        }
    }
}
