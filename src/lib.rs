//! Umbrella crate re-exporting the composite-transactions workspace.
//!
//! See the repository README for the architecture overview; the individual
//! crates carry the definitional documentation:
//!
//! * [`model`] — Definitions 1–9 (transactions, schedules, composite systems)
//! * [`core`] — Definitions 10–20 and Theorem 1 (the Comp-C checker)
//! * [`configs`] — stacks/forks/joins and SCC/FCC/JCC (Definitions 21–27)
//! * [`classic`] — CSR/OPSR/LLSR baselines and embeddings
//! * [`sim`] — the composite-system simulator
//! * [`workload`] — figures, scenarios and random system generation
//! * [`spec`] — the JSON system format consumed by `compc-check`

pub mod spec;

pub use compc_classic as classic;
pub use compc_configs as configs;
pub use compc_core as core;
pub use compc_graph as graph;
pub use compc_model as model;
pub use compc_sim as sim;
pub use compc_workload as workload;
