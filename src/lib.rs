//! Umbrella crate re-exporting the composite-transactions workspace.
//!
//! See the repository README for the architecture overview; the individual
//! crates carry the definitional documentation:
//!
//! * [`model`] — Definitions 1–9 (transactions, schedules, composite systems)
//! * [`core`] — Definitions 10–20 and Theorem 1 (the Comp-C checker)
//! * [`engine`] — the parallel batch-checking engine (worker pools, stats)
//! * [`configs`] — stacks/forks/joins and SCC/FCC/JCC (Definitions 21–27)
//! * [`classic`] — CSR/OPSR/LLSR baselines and embeddings
//! * [`sim`] — the composite-system simulator
//! * [`workload`] — figures, scenarios and random system generation
//! * [`spec`] — the versioned JSON system format consumed by `compc-check`
//! * [`session`] — incremental spec-level checking (backs `compc-serve`)
//! * [`serve`] — the daemon serving core: concurrent dispatch, write-ahead
//!   journal, overload/drain control, and the resilient NDJSON client
//! * [`json`] — the dependency-free JSON value/parser the spec format uses
//! * [`trace`] — structured reduction events, NDJSON sinks and histograms
//! * [`oracle`] — the brute-force Comp-C decision oracle (differential testing)

pub mod serve;
pub mod session;
pub mod spec;

pub use compc_classic as classic;
pub use compc_configs as configs;
pub use compc_core as core;
pub use compc_engine as engine;
pub use compc_graph as graph;
pub use compc_json as json;
pub use compc_model as model;
pub use compc_oracle as oracle;
pub use compc_sim as sim;
pub use compc_trace as trace;
pub use compc_workload as workload;

pub use compc_core::{
    check, Backend, CheckOptions, Checker, Session, SessionError, SessionStats, Verdict,
};
pub use compc_engine::{Batch, BatchItem, BatchReport};
pub use session::{SpecSession, SpecSessionError, SpecSnapshot};
