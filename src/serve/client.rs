//! A resilient NDJSON client for the `compc-serve` protocol.
//!
//! [`stream_requests`] sends request lines in order and survives daemon
//! restarts: connect failures and dropped connections are retried under
//! bounded exponential backoff with jitter, and after a reconnect the
//! stream resumes from the first *unacked* line — every line at or past
//! that point is re-sent. Because the stream is sequential, the global
//! first-unacked line is also each named session's first unacked line,
//! and the report tracks the acked counts per session so a caller can
//! audit (or resume) every session independently. Re-sending is safe
//! because spec merges are idempotent (re-appending an already-merged
//! fragment changes nothing), which is exactly what lets the
//! crash-recovery soak use this client as its canonical workload driver.

use crate::session::DEFAULT_SESSION;

use compc_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Where the daemon lives.
#[derive(Clone, Debug)]
pub enum Target {
    /// A Unix socket path (the daemon's `--socket`).
    Unix(String),
    /// A TCP address (the daemon's `--listen`).
    Tcp(String),
}

/// Retry behavior for [`stream_requests`].
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// First retry delay; doubles per consecutive failure.
    pub base: Duration,
    /// Delay ceiling.
    pub cap: Duration,
    /// Consecutive failures (on one request) before giving up.
    pub max_attempts: u32,
    /// Per-read socket timeout while waiting for a response.
    pub io_timeout: Duration,
    /// Jitter seed, so a soak run is reproducible.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            max_attempts: 40,
            io_timeout: Duration::from_secs(30),
            seed: 0x5eed,
        }
    }
}

/// What a [`stream_requests`] run accomplished.
#[derive(Debug, Default)]
pub struct ClientReport {
    /// Request lines acknowledged with a response line.
    pub acked: usize,
    /// Times a connection was (re-)established after the first.
    pub reconnects: u64,
    /// Lines re-sent after a reconnect (duplicates the daemon merged
    /// idempotently).
    pub resent: u64,
    /// Acked verdicts that were `not-comp-c`.
    pub violations: u64,
    /// Acked lines per session (a line's `"session"` field; absent means
    /// `"default"`), sorted by name — the per-session view of `acked`.
    pub acked_by_session: Vec<(String, usize)>,
    /// Why the client gave up, if it did (all lines acked when `None`).
    pub gave_up: Option<String>,
}

enum ClientStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl ClientStream {
    fn connect(target: &Target, io_timeout: Duration) -> std::io::Result<ClientStream> {
        let stream = match target {
            Target::Unix(path) => ClientStream::Unix(UnixStream::connect(path)?),
            Target::Tcp(addr) => ClientStream::Tcp(TcpStream::connect(addr)?),
        };
        match &stream {
            ClientStream::Unix(s) => s.set_read_timeout(Some(io_timeout))?,
            ClientStream::Tcp(s) => s.set_read_timeout(Some(io_timeout))?,
        }
        Ok(stream)
    }

    fn try_clone(&self) -> std::io::Result<ClientStream> {
        match self {
            ClientStream::Unix(s) => s.try_clone().map(ClientStream::Unix),
            ClientStream::Tcp(s) => s.try_clone().map(ClientStream::Tcp),
        }
    }
}

impl std::io::Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.read(buf),
            ClientStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.write(buf),
            ClientStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Unix(s) => s.flush(),
            ClientStream::Tcp(s) => s.flush(),
        }
    }
}

/// A tiny deterministic xorshift generator for backoff jitter — enough
/// randomness to de-synchronize retrying clients, with zero dependencies.
struct Jitter(u64);

impl Jitter {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Exponential backoff with jitter: doubles `base` per failed attempt up
/// to `cap`, then picks uniformly from the upper half of that window so
/// concurrent clients don't stampede in lockstep.
fn backoff_delay(policy: &BackoffPolicy, attempt: u32, jitter: &mut Jitter) -> Duration {
    let base_ms = policy.base.as_millis().max(1) as u64;
    let cap_ms = policy.cap.as_millis().max(1) as u64;
    let exp_ms = base_ms.saturating_mul(1u64 << attempt.min(20)).min(cap_ms);
    let low = (exp_ms / 2).max(1);
    Duration::from_millis(low + jitter.next() % (exp_ms - low + 1))
}

/// Streams `lines` to the daemon in order, calling `on_response(index,
/// response)` for each acked line, and riding out daemon restarts.
///
/// Never panics and never returns early with lines silently unsent: either
/// every line is acked (`gave_up` is `None`) or the report says how far it
/// got and why it stopped.
pub fn stream_requests(
    target: &Target,
    lines: &[String],
    policy: &BackoffPolicy,
    on_response: impl FnMut(usize, &Value),
) -> ClientReport {
    stream_requests_observed(target, lines, policy, |_| {}, on_response)
}

/// [`stream_requests`] with a delivery observer: `on_send(index)` fires
/// immediately *before* each write of line `index` (first sends and
/// re-sends alike), so a harness can maintain an upper bound on what the
/// daemon can possibly have durably applied — the crash-recovery soak
/// asserts `recovered <= delivered` with it.
pub fn stream_requests_observed(
    target: &Target,
    lines: &[String],
    policy: &BackoffPolicy,
    mut on_send: impl FnMut(usize),
    mut on_response: impl FnMut(usize, &Value),
) -> ClientReport {
    // The session each line addresses, resolved once up front so the ack
    // path does no re-parsing.
    let sessions: Vec<String> = lines.iter().map(|line| session_of(line)).collect();
    let mut acked_by_session: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    let mut report = ClientReport::default();
    let mut jitter = Jitter(policy.seed | 1);
    let mut attempts: u32 = 0;
    let mut connected_once = false;
    let mut connection: Option<(BufReader<ClientStream>, ClientStream)> = None;

    while report.acked < lines.len() {
        if attempts >= policy.max_attempts {
            report.gave_up = Some(format!(
                "request {} failed {} consecutive attempts",
                report.acked + 1,
                attempts
            ));
            return finish(report, acked_by_session);
        }
        let (reader, writer) = match connection.as_mut() {
            Some(pair) => (&mut pair.0, &mut pair.1),
            None => match ClientStream::connect(target, policy.io_timeout) {
                Ok(stream) => match stream.try_clone() {
                    Ok(write_half) => {
                        if connected_once {
                            report.reconnects += 1;
                        }
                        connected_once = true;
                        connection = Some((BufReader::new(stream), write_half));
                        let pair = connection.as_mut().expect("just inserted");
                        (&mut pair.0, &mut pair.1)
                    }
                    Err(_) => {
                        attempts += 1;
                        std::thread::sleep(backoff_delay(policy, attempts, &mut jitter));
                        continue;
                    }
                },
                Err(_) => {
                    attempts += 1;
                    std::thread::sleep(backoff_delay(policy, attempts, &mut jitter));
                    continue;
                }
            },
        };

        let index = report.acked;
        if attempts > 0 {
            report.resent += 1;
        }
        let mut line = lines[index].clone();
        line.push('\n');
        on_send(index);
        let io = writer.write_all(line.as_bytes()).and_then(|_| {
            let mut response = String::new();
            reader.read_line(&mut response).map(|n| (n, response))
        });
        match io {
            Ok((0, _)) | Err(_) => {
                // The daemon went away mid-request (restart, crash, or
                // response timeout): reconnect and re-send from here.
                connection = None;
                attempts += 1;
                std::thread::sleep(backoff_delay(policy, attempts, &mut jitter));
                continue;
            }
            Ok((_, response)) => {
                let value = match compc_json::parse(response.trim_end()) {
                    Ok(v) => v,
                    Err(e) => {
                        report.gave_up = Some(format!(
                            "request {} got a non-JSON response: {e}",
                            index + 1
                        ));
                        return finish(report, acked_by_session);
                    }
                };
                let ok = value.get("ok").and_then(Value::as_bool).unwrap_or(false);
                let kind = value.get("kind").and_then(Value::as_str).unwrap_or("");
                if !ok && kind == "overloaded" {
                    // Shed at the door: back off and reconnect.
                    connection = None;
                    attempts += 1;
                    std::thread::sleep(backoff_delay(policy, attempts, &mut jitter));
                    continue;
                }
                if !ok && kind == "interrupted" {
                    // Deadline interruption is resumable: re-send the same
                    // line; the session picks up from its completed levels.
                    attempts += 1;
                    continue;
                }
                if value.get("verdict").and_then(Value::as_str) == Some("not-comp-c") {
                    report.violations += 1;
                }
                on_response(index, &value);
                *acked_by_session.entry(sessions[index].clone()).or_insert(0) += 1;
                report.acked += 1;
                attempts = 0;
            }
        }
    }
    finish(report, acked_by_session)
}

/// The session a request line addresses (`"default"` when the field is
/// absent or the line is not even JSON — matching the daemon's routing of
/// unparseable lines to a catch-all).
fn session_of(line: &str) -> String {
    compc_json::parse(line)
        .ok()
        .and_then(|v| v.get("session").and_then(Value::as_str).map(String::from))
        .unwrap_or_else(|| DEFAULT_SESSION.to_string())
}

fn finish(
    mut report: ClientReport,
    acked: std::collections::HashMap<String, usize>,
) -> ClientReport {
    let mut by_session: Vec<(String, usize)> = acked.into_iter().collect();
    by_session.sort();
    report.acked_by_session = by_session;
    report
}
