//! Connection edge of the daemon: the accept loop and the per-connection
//! reader/writer threads.
//!
//! Every per-connection failure — a failed `try_clone`, a write error, a
//! hostile byte stream — is scoped to that connection: the error is
//! logged or answered, the connection is dropped, and the accept loop
//! keeps accepting. Nothing at this layer can take the daemon down.

use super::dispatch::{
    error_object, panic_message, Conns, CtrlMsg, Request, RequestBody, ShardMsg,
};
use super::{Gauges, ServeConfig};
use crate::session::DEFAULT_SESSION;
use crate::spec::SystemSpec;
use compc_json::Value;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::catch_unwind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::time::Duration;

/// Where a reader sends what it parsed: the per-shard request queues, the
/// control thread, and the connection registry responses come back
/// through.
#[derive(Clone)]
pub(crate) struct Routes {
    pub shards: Vec<SyncSender<ShardMsg>>,
    pub ctrl: Sender<CtrlMsg>,
    pub conns: Conns,
}

/// Per-connection limits, from the `--max-conns`, `--idle-timeout-ms`,
/// and `--max-line-bytes` flags.
#[derive(Clone, Copy)]
pub(crate) struct ConnLimits {
    pub max_conns: usize,
    pub idle_timeout: Option<Duration>,
    pub max_line_bytes: usize,
}

pub(crate) enum Listener {
    Unix(UnixListener, String),
    Tcp(TcpListener, String),
}

impl Listener {
    /// Binds a Unix socket, replacing only a *stale socket* at `path`.
    /// Anything else living there (a regular file, a directory, a
    /// symlink — most likely a mistyped path) is refused rather than
    /// deleted.
    pub fn bind_unix(path: &str) -> Result<Listener, String> {
        use std::os::unix::fs::FileTypeExt;
        match std::fs::symlink_metadata(path) {
            Ok(meta) if meta.file_type().is_socket() => {
                std::fs::remove_file(path)
                    .map_err(|e| format!("cannot remove stale socket {path}: {e}"))?;
            }
            Ok(meta) => {
                return Err(format!(
                    "refusing to replace {path}: it exists and is {}, not a socket; \
                     pass a fresh --socket path",
                    file_kind(&meta.file_type())
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot stat {path}: {e}")),
        }
        let listener =
            UnixListener::bind(path).map_err(|e| format!("cannot bind socket {path}: {e}"))?;
        Ok(Listener::Unix(listener, path.to_string()))
    }

    pub fn bind_tcp(addr: &str) -> Result<Listener, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let display = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(Listener::Tcp(listener, display))
    }

    /// What "listening on ..." should print (the resolved TCP address, so
    /// `--listen 127.0.0.1:0` announces the picked port).
    pub fn local_display(&self) -> &str {
        match self {
            Listener::Unix(_, path) => path,
            Listener::Tcp(_, display) => display,
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(on),
            Listener::Tcp(l, _) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l, _) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

fn file_kind(kind: &std::fs::FileType) -> &'static str {
    if kind.is_dir() {
        "a directory"
    } else if kind.is_symlink() {
        "a symlink"
    } else if kind.is_file() {
        "a regular file"
    } else {
        "another kind of file"
    }
}

pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(on),
            Stream::Tcp(s) => s.set_nonblocking(on),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(t),
            Stream::Tcp(s) => s.set_write_timeout(t),
        }
    }

    fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Accepts until `stop` is set: sheds over-capacity connections with an
/// `overloaded` error, spawns a reader and a writer thread per accepted
/// connection, and joins them all (and unlinks a Unix socket path) on the
/// way out.
pub(crate) fn accept_loop(
    listener: Listener,
    routes: Routes,
    config: ServeConfig,
    gauges: Arc<Gauges>,
    stop: Arc<AtomicBool>,
    limits: ConnLimits,
) {
    // Nonblocking accept lets the loop poll the stop flag; if the fcntl
    // somehow fails we still serve, just without prompt shutdown.
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("cannot make the listener pollable: {e}");
    }
    let mut next_conn: u64 = 0;
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
                continue;
            }
            Err(e) => {
                eprintln!("accept failed: {e}");
                std::thread::sleep(Duration::from_millis(15));
                continue;
            }
        };
        // The accepted socket may inherit the listener's nonblocking mode
        // on some platforms; the reader relies on blocking reads.
        let _ = stream.set_nonblocking(false);
        if gauges.connections.load(Ordering::SeqCst) as usize >= limits.max_conns {
            shed(stream, &gauges, limits.max_conns);
            continue;
        }
        let conn = next_conn;
        next_conn += 1;
        // A failure to clone this one stream drops this one connection —
        // never the daemon (a `?` here once killed the whole process).
        let reader_half = match stream.try_clone() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("connection {conn}: cannot clone stream ({e}); dropping it");
                continue;
            }
        };
        let (resp_tx, resp_rx) = std::sync::mpsc::channel::<String>();
        routes
            .conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(conn, resp_tx);
        gauges.accepted.fetch_add(1, Ordering::SeqCst);
        let active = gauges.connections.fetch_add(1, Ordering::SeqCst) + 1;
        gauges.peak_connections.fetch_max(active, Ordering::SeqCst);
        handlers.retain(|h| !h.is_finished());
        // A thread-spawn failure must undo the registration above, or the
        // connection registry leaks the entry and --max-conns capacity is
        // permanently down one — exactly under the resource exhaustion
        // that makes spawns fail in the first place. Unregistering drops
        // the response sender, which also ends an already-running writer
        // thread and shuts its socket down.
        if !spawn_handler(&mut handlers, format!("conn-{conn}-write"), move || {
            writer_loop(stream, resp_rx)
        }) {
            unregister(&routes, &gauges, conn);
            continue;
        }
        let reader_routes = routes.clone();
        let reader_gauges = Arc::clone(&gauges);
        let inject_panic = config.inject_panic.clone();
        if !spawn_handler(&mut handlers, format!("conn-{conn}-read"), move || {
            reader_loop(
                reader_half,
                conn,
                reader_routes,
                inject_panic,
                &reader_gauges,
                limits,
            )
        }) {
            unregister(&routes, &gauges, conn);
            continue;
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

/// Connection teardown: removes the registry entry (ending the writer),
/// keeps the connection gauge honest, and nudges the control thread for
/// `--once`.
fn unregister(routes: &Routes, gauges: &Gauges, conn: u64) {
    routes
        .conns
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .remove(&conn);
    gauges.connections.fetch_sub(1, Ordering::SeqCst);
    let _ = routes.ctrl.send(CtrlMsg::Disconnected);
}

/// Spawns one connection thread; on failure the closure (and the stream
/// half it owns) is dropped and the caller must unwind the connection's
/// registration. Returns whether the thread is running.
fn spawn_handler(
    handlers: &mut Vec<std::thread::JoinHandle<()>>,
    name: String,
    f: impl FnOnce() + Send + 'static,
) -> bool {
    match std::thread::Builder::new().name(name.clone()).spawn(f) {
        Ok(handle) => {
            handlers.push(handle);
            true
        }
        Err(e) => {
            eprintln!("cannot spawn {name}: {e}; dropping the connection");
            false
        }
    }
}

/// Over `--max-conns`: answer with a structured error and close, bounding
/// both memory and the dispatch queue under connection floods.
fn shed(mut stream: Stream, gauges: &Gauges, max: usize) {
    gauges.shed.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut line = error_object(
        "overloaded",
        format!("server is at its --max-conns capacity ({max}); retry with backoff"),
    )
    .to_compact();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown();
}

/// Reads request lines, parses and classifies them *on the reader thread*
/// (keeping JSON parsing off the serialized checking path), and routes
/// each request to its session's dispatch shard. Owns the connection
/// teardown notification.
///
/// Requests that name no session (or cannot even be parsed far enough to
/// name one) go to the shard of the *previous* request on this
/// connection, so a sequential client's responses stay in request order.
fn reader_loop(
    mut stream: Stream,
    conn: u64,
    routes: Routes,
    inject_panic: Option<String>,
    gauges: &Gauges,
    limits: ConnLimits,
) {
    let _ = stream.set_read_timeout(limits.idle_timeout);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // After an over-cap line is reported, discard bytes until its newline.
    let mut skipping = false;
    // Where session-less (unparseable) requests go: the shard of this
    // connection's previous request, seeded with the default session's.
    let mut current_shard = super::shard_of(DEFAULT_SESSION, routes.shards.len());
    'read: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF. An unterminated final line is still a complete
                // request — answer it before tearing down.
                if !buf.is_empty() && !skipping {
                    deliver_line(
                        &buf,
                        conn,
                        &routes,
                        &inject_panic,
                        gauges,
                        &mut current_shard,
                    );
                }
                break;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                gauges.idle_closed.fetch_add(1, Ordering::SeqCst);
                let ms = limits.idle_timeout.map_or(0, |t| t.as_millis());
                let _ = send_request(
                    &routes,
                    gauges,
                    conn,
                    current_shard,
                    DEFAULT_SESSION.to_string(),
                    false,
                    RequestBody::Malformed {
                        kind: "timeout",
                        error: format!("idle for more than --idle-timeout-ms ({ms}); closing"),
                    },
                );
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break, // reset/teardown: nothing to answer
        };
        for &byte in &chunk[..n] {
            if byte == b'\n' {
                if skipping {
                    skipping = false;
                } else if !deliver_line(
                    &buf,
                    conn,
                    &routes,
                    &inject_panic,
                    gauges,
                    &mut current_shard,
                ) {
                    break 'read;
                }
                buf.clear();
            } else if !skipping {
                buf.push(byte);
                if buf.len() > limits.max_line_bytes {
                    gauges.oversize_lines.fetch_add(1, Ordering::SeqCst);
                    buf.clear();
                    skipping = true;
                    if !send_request(
                        &routes,
                        gauges,
                        conn,
                        current_shard,
                        DEFAULT_SESSION.to_string(),
                        false,
                        RequestBody::Malformed {
                            kind: "oversize",
                            error: format!(
                                "request line exceeds --max-line-bytes ({}); discarded",
                                limits.max_line_bytes
                            ),
                        },
                    ) {
                        break 'read;
                    }
                }
            }
        }
    }
    unregister(&routes, gauges, conn);
}

/// One complete request line: non-UTF-8 becomes a structured protocol
/// error (routed through the current shard so responses stay in request
/// order), blank lines are tolerated, everything else is classified and
/// routed to its session's shard. Returns false when the serve side is
/// gone.
fn deliver_line(
    buf: &[u8],
    conn: u64,
    routes: &Routes,
    inject_panic: &Option<String>,
    gauges: &Gauges,
    current_shard: &mut usize,
) -> bool {
    let text = match std::str::from_utf8(buf) {
        Ok(t) => t,
        Err(e) => {
            return send_request(
                routes,
                gauges,
                conn,
                *current_shard,
                DEFAULT_SESSION.to_string(),
                false,
                RequestBody::Malformed {
                    kind: "protocol",
                    error: format!("request line is not valid UTF-8: {e}"),
                },
            )
        }
    };
    if text.trim().is_empty() {
        return true;
    }
    // Classification runs real parsers on hostile bytes; a panic in them
    // is confined to this one request, exactly like a panic in the shard's
    // handler (which never got to touch session state here).
    let (session, flagged, body) = match catch_unwind(|| classify(text, inject_panic)) {
        Ok(classified) => classified,
        Err(payload) => {
            gauges.internal_faults.fetch_add(1, Ordering::SeqCst);
            let message = panic_message(payload);
            eprintln!("request handler panicked (session state untouched): {message}");
            (
                None,
                false,
                RequestBody::Malformed {
                    kind: "internal",
                    error: format!("request handler panicked: {message}; session state restored"),
                },
            )
        }
    };
    let shard = match &session {
        Some(name) => super::shard_of(name, routes.shards.len()),
        None => *current_shard,
    };
    *current_shard = shard;
    send_request(
        routes,
        gauges,
        conn,
        shard,
        session.unwrap_or_else(|| DEFAULT_SESSION.to_string()),
        flagged,
        body,
    )
}

/// Parses one request line into `(session, panic-flagged, body)`.
/// `session` is `None` only when the line could not be parsed far enough
/// to name one (route it to the connection's current shard). A request
/// without a `"session"` field is the `"default"` session — the entire
/// pre-multi-session protocol, unchanged.
fn classify(line: &str, inject_panic: &Option<String>) -> (Option<String>, bool, RequestBody) {
    let request = match compc_json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                None,
                false,
                RequestBody::Malformed {
                    kind: "protocol",
                    error: format!("request is not JSON: {e}"),
                },
            )
        }
    };
    // The fault-injection token is checked on the parsed line so that a
    // flagged request still panics *inside the shard's guarded handler*
    // (where the soak can observe recovery), not here.
    let flagged = inject_panic
        .as_ref()
        .is_some_and(|token| !token.is_empty() && line.contains(token.as_str()));
    let session = match request.get("session") {
        None => DEFAULT_SESSION.to_string(),
        Some(value) => match value.as_str().filter(|s| !s.is_empty()) {
            Some(name) => name.to_string(),
            None => {
                return (
                    None,
                    flagged,
                    RequestBody::Malformed {
                        kind: "protocol",
                        error: "\"session\" must be a non-empty string".to_string(),
                    },
                )
            }
        },
    };
    let body = if let Some(fragment) = request.get("append") {
        match SystemSpec::from_json(fragment) {
            Ok(spec) => RequestBody::Append(Box::new(spec)),
            Err(e) => RequestBody::Malformed {
                kind: "spec",
                error: e.to_string(),
            },
        }
    } else {
        match request.get("op").and_then(Value::as_str) {
            Some("stats") => RequestBody::Stats,
            Some("checkpoint") => RequestBody::Checkpoint,
            Some("shutdown") => RequestBody::Shutdown,
            Some(other) => RequestBody::Malformed {
                kind: "protocol",
                error: format!("unknown op {other:?}"),
            },
            None => RequestBody::Malformed {
                kind: "protocol",
                error: "request must be {\"append\": {...}} or {\"op\": \"...\"}".to_string(),
            },
        }
    };
    (Some(session), flagged, body)
}

/// Sends one classified request to its shard, keeping both queue-depth
/// gauges honest. Blocks when the bounded shard queue is full (that is
/// the back-pressure). Returns false when the serve side is gone — also
/// when the connection registry no longer has this connection, which
/// means a drain is abandoning the socket.
fn send_request(
    routes: &Routes,
    gauges: &Gauges,
    conn: u64,
    shard: usize,
    session: String,
    panic_flagged: bool,
    body: RequestBody,
) -> bool {
    let resp = match routes
        .conns
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .get(&conn)
    {
        Some(sender) => sender.clone(),
        None => return false,
    };
    gauges.queue_depth.fetch_add(1, Ordering::SeqCst);
    gauges.shard_depths[shard].fetch_add(1, Ordering::SeqCst);
    match routes.shards[shard].send(ShardMsg::Request(Request {
        resp,
        session,
        panic_flagged,
        body,
    })) {
        Ok(()) => true,
        Err(_) => {
            gauges.queue_depth.fetch_sub(1, Ordering::SeqCst);
            gauges.shard_depths[shard].fetch_sub(1, Ordering::SeqCst);
            false
        }
    }
}

/// Writes response lines until the dispatch side drops the channel or the
/// client stops reading, then shuts the socket down — which also unblocks
/// a reader parked in `read` during daemon shutdown.
fn writer_loop(mut stream: Stream, rx: Receiver<String>) {
    for line in rx {
        let write = stream
            .write_all(line.as_bytes())
            .and_then(|_| stream.write_all(b"\n"))
            .and_then(|_| stream.flush());
        if write.is_err() {
            break;
        }
    }
    let _ = stream.shutdown();
}
