//! Connection edge of the daemon: the accept loop and the per-connection
//! reader/writer threads.
//!
//! Every per-connection failure — a failed `try_clone`, a write error, a
//! hostile byte stream — is scoped to that connection: the error is
//! logged or answered, the connection is dropped, and the accept loop
//! keeps accepting. Nothing at this layer can take the daemon down.

use super::dispatch::{error_object, Msg};
use super::Gauges;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection limits, from the `--max-conns`, `--idle-timeout-ms`,
/// and `--max-line-bytes` flags.
#[derive(Clone, Copy)]
pub(crate) struct ConnLimits {
    pub max_conns: usize,
    pub idle_timeout: Option<Duration>,
    pub max_line_bytes: usize,
}

pub(crate) enum Listener {
    Unix(UnixListener, String),
    Tcp(TcpListener, String),
}

impl Listener {
    /// Binds a Unix socket, replacing only a *stale socket* at `path`.
    /// Anything else living there (a regular file, a directory, a
    /// symlink — most likely a mistyped path) is refused rather than
    /// deleted.
    pub fn bind_unix(path: &str) -> Result<Listener, String> {
        use std::os::unix::fs::FileTypeExt;
        match std::fs::symlink_metadata(path) {
            Ok(meta) if meta.file_type().is_socket() => {
                std::fs::remove_file(path)
                    .map_err(|e| format!("cannot remove stale socket {path}: {e}"))?;
            }
            Ok(meta) => {
                return Err(format!(
                    "refusing to replace {path}: it exists and is {}, not a socket; \
                     pass a fresh --socket path",
                    file_kind(&meta.file_type())
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot stat {path}: {e}")),
        }
        let listener =
            UnixListener::bind(path).map_err(|e| format!("cannot bind socket {path}: {e}"))?;
        Ok(Listener::Unix(listener, path.to_string()))
    }

    pub fn bind_tcp(addr: &str) -> Result<Listener, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let display = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(Listener::Tcp(listener, display))
    }

    /// What "listening on ..." should print (the resolved TCP address, so
    /// `--listen 127.0.0.1:0` announces the picked port).
    pub fn local_display(&self) -> &str {
        match self {
            Listener::Unix(_, path) => path,
            Listener::Tcp(_, display) => display,
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(on),
            Listener::Tcp(l, _) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l, _) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

fn file_kind(kind: &std::fs::FileType) -> &'static str {
    if kind.is_dir() {
        "a directory"
    } else if kind.is_symlink() {
        "a symlink"
    } else if kind.is_file() {
        "a regular file"
    } else {
        "another kind of file"
    }
}

pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(on),
            Stream::Tcp(s) => s.set_nonblocking(on),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(t),
            Stream::Tcp(s) => s.set_write_timeout(t),
        }
    }

    fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Accepts until `stop` is set: sheds over-capacity connections with an
/// `overloaded` error, spawns a reader and a writer thread per accepted
/// connection, and joins them all (and unlinks a Unix socket path) on the
/// way out.
pub(crate) fn accept_loop(
    listener: Listener,
    tx: SyncSender<Msg>,
    gauges: Arc<Gauges>,
    stop: Arc<AtomicBool>,
    limits: ConnLimits,
) {
    // Nonblocking accept lets the loop poll the stop flag; if the fcntl
    // somehow fails we still serve, just without prompt shutdown.
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("cannot make the listener pollable: {e}");
    }
    let mut next_conn: u64 = 0;
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
                continue;
            }
            Err(e) => {
                eprintln!("accept failed: {e}");
                std::thread::sleep(Duration::from_millis(15));
                continue;
            }
        };
        // The accepted socket may inherit the listener's nonblocking mode
        // on some platforms; the reader relies on blocking reads.
        let _ = stream.set_nonblocking(false);
        if gauges.connections.load(Ordering::SeqCst) as usize >= limits.max_conns {
            shed(stream, &gauges, limits.max_conns);
            continue;
        }
        let conn = next_conn;
        next_conn += 1;
        // A failure to clone this one stream drops this one connection —
        // never the daemon (a `?` here once killed the whole process).
        let reader_half = match stream.try_clone() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("connection {conn}: cannot clone stream ({e}); dropping it");
                continue;
            }
        };
        let (resp_tx, resp_rx) = std::sync::mpsc::channel::<String>();
        if tx
            .send(Msg::Connected {
                conn,
                resp: resp_tx,
            })
            .is_err()
        {
            break; // dispatch is gone: shutting down
        }
        gauges.accepted.fetch_add(1, Ordering::SeqCst);
        let active = gauges.connections.fetch_add(1, Ordering::SeqCst) + 1;
        gauges.peak_connections.fetch_max(active, Ordering::SeqCst);
        handlers.retain(|h| !h.is_finished());
        // A thread-spawn failure must undo the registration above, or the
        // dispatch conns map leaks the entry and --max-conns capacity is
        // permanently down one — exactly under the resource exhaustion
        // that makes spawns fail in the first place. Disconnected makes
        // dispatch drop the response sender, which also ends an
        // already-running writer thread and shuts its socket down.
        if !spawn_handler(&mut handlers, format!("conn-{conn}-write"), move || {
            writer_loop(stream, resp_rx)
        }) {
            gauges.connections.fetch_sub(1, Ordering::SeqCst);
            let _ = tx.send(Msg::Disconnected { conn });
            continue;
        }
        let reader_tx = tx.clone();
        let reader_gauges = Arc::clone(&gauges);
        if !spawn_handler(&mut handlers, format!("conn-{conn}-read"), move || {
            reader_loop(reader_half, conn, &reader_tx, &reader_gauges, limits)
        }) {
            gauges.connections.fetch_sub(1, Ordering::SeqCst);
            let _ = tx.send(Msg::Disconnected { conn });
            continue;
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

/// Spawns one connection thread; on failure the closure (and the stream
/// half it owns) is dropped and the caller must unwind the connection's
/// registration. Returns whether the thread is running.
fn spawn_handler(
    handlers: &mut Vec<std::thread::JoinHandle<()>>,
    name: String,
    f: impl FnOnce() + Send + 'static,
) -> bool {
    match std::thread::Builder::new().name(name.clone()).spawn(f) {
        Ok(handle) => {
            handlers.push(handle);
            true
        }
        Err(e) => {
            eprintln!("cannot spawn {name}: {e}; dropping the connection");
            false
        }
    }
}

/// Over `--max-conns`: answer with a structured error and close, bounding
/// both memory and the dispatch queue under connection floods.
fn shed(mut stream: Stream, gauges: &Gauges, max: usize) {
    gauges.shed.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut line = error_object(
        "overloaded",
        format!("server is at its --max-conns capacity ({max}); retry with backoff"),
    )
    .to_compact();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown();
}

/// Reads request lines and feeds them (or structured complaints about
/// them) to the dispatch thread. Owns the connection teardown
/// notification.
fn reader_loop(
    mut stream: Stream,
    conn: u64,
    tx: &SyncSender<Msg>,
    gauges: &Gauges,
    limits: ConnLimits,
) {
    let _ = stream.set_read_timeout(limits.idle_timeout);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // After an over-cap line is reported, discard bytes until its newline.
    let mut skipping = false;
    'read: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF. An unterminated final line is still a complete
                // request — answer it before tearing down.
                if !buf.is_empty() && !skipping {
                    deliver_line(&buf, conn, tx, gauges);
                }
                break;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                gauges.idle_closed.fetch_add(1, Ordering::SeqCst);
                let ms = limits.idle_timeout.map_or(0, |t| t.as_millis());
                let _ = enqueue(
                    tx,
                    gauges,
                    Msg::Malformed {
                        conn,
                        kind: "timeout",
                        error: format!("idle for more than --idle-timeout-ms ({ms}); closing"),
                    },
                );
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break, // reset/teardown: nothing to answer
        };
        for &byte in &chunk[..n] {
            if byte == b'\n' {
                if skipping {
                    skipping = false;
                } else if !deliver_line(&buf, conn, tx, gauges) {
                    break 'read;
                }
                buf.clear();
            } else if !skipping {
                buf.push(byte);
                if buf.len() > limits.max_line_bytes {
                    gauges.oversize_lines.fetch_add(1, Ordering::SeqCst);
                    buf.clear();
                    skipping = true;
                    if !enqueue(
                        tx,
                        gauges,
                        Msg::Malformed {
                            conn,
                            kind: "oversize",
                            error: format!(
                                "request line exceeds --max-line-bytes ({}); discarded",
                                limits.max_line_bytes
                            ),
                        },
                    ) {
                        break 'read;
                    }
                }
            }
        }
    }
    let _ = tx.send(Msg::Disconnected { conn });
    gauges.connections.fetch_sub(1, Ordering::SeqCst);
}

/// One complete request line: non-UTF-8 becomes a structured protocol
/// error (routed through dispatch so responses stay in request order),
/// blank lines are tolerated, everything else is dispatched verbatim.
/// Returns false when the dispatch side is gone.
fn deliver_line(buf: &[u8], conn: u64, tx: &SyncSender<Msg>, gauges: &Gauges) -> bool {
    let text = match std::str::from_utf8(buf) {
        Ok(t) => t,
        Err(e) => {
            return enqueue(
                tx,
                gauges,
                Msg::Malformed {
                    conn,
                    kind: "protocol",
                    error: format!("request line is not valid UTF-8: {e}"),
                },
            )
        }
    };
    if text.trim().is_empty() {
        return true;
    }
    enqueue(
        tx,
        gauges,
        Msg::Line {
            conn,
            line: text.to_string(),
        },
    )
}

/// Sends one message to dispatch, keeping the queue-depth gauge honest.
/// Blocks when the bounded queue is full (that is the back-pressure).
fn enqueue(tx: &SyncSender<Msg>, gauges: &Gauges, msg: Msg) -> bool {
    let counted = matches!(msg, Msg::Line { .. } | Msg::Malformed { .. });
    if counted {
        gauges.queue_depth.fetch_add(1, Ordering::SeqCst);
    }
    match tx.send(msg) {
        Ok(()) => true,
        Err(_) => {
            if counted {
                gauges.queue_depth.fetch_sub(1, Ordering::SeqCst);
            }
            false
        }
    }
}

/// Writes response lines until the dispatch side drops the channel or the
/// client stops reading, then shuts the socket down — which also unblocks
/// a reader parked in `read` during daemon shutdown.
fn writer_loop(mut stream: Stream, rx: Receiver<String>) {
    for line in rx {
        let write = stream
            .write_all(line.as_bytes())
            .and_then(|_| stream.write_all(b"\n"))
            .and_then(|_| stream.flush());
        if write.is_err() {
            break;
        }
    }
    let _ = stream.shutdown();
}
