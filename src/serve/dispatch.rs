//! The dispatch shards and the control thread: shards own disjoint
//! partitions of the named sessions and serve appends in arrival order
//! with journal group commit; the control thread coordinates global
//! operations (checkpoint compaction, shutdown, drain) via a
//! freeze/resume protocol.
//!
//! # Sharding
//!
//! Requests are routed by a stable hash of their session name
//! ([`super::shard_of`]), so one shard is the single owner of each
//! session's state — the checking path needs no locks — and per-session
//! FIFO order is preserved end to end (readers assign shards in line
//! order, `std::sync::mpsc` is FIFO per sender, batches apply and ack in
//! queue order). The journal is the one shared resource: a `Mutex` taken
//! once per *commit batch*, never per request.
//!
//! # Group commit
//!
//! A shard drains contiguous queued appends up to `--commit-batch`,
//! applies each under `catch_unwind` (a panicking handler rolls back that
//! one request and answers `internal`), then flushes: all the batch's
//! journal records in one `write_all`, one `sync_data`, and only then the
//! batch's responses, in order. A failed batch write rolls every touched
//! session back to its pre-batch snapshot and converts every would-be ack
//! into a structured `journal` error — no ack was sent, so no durability
//! promise was broken, and the clients may simply retry.
//!
//! # Freeze/resume
//!
//! Global operations need every shard quiescent: the control thread sends
//! `Freeze` into each shard's queue (so it lands after everything already
//! queued), each shard flushes its batch, serializes its sessions, replies
//! and blocks; the control thread persists (checkpoint rewrite, then
//! journal truncation — all shards are frozen, so every journaled record
//! is covered), then resumes them. Only the control thread ever
//! coordinates, so the protocol cannot deadlock.

use super::journal::{BatchRecord, Journal};
use super::{Gauges, ServeConfig};
use crate::session::{
    sessions_checkpoint_json, SpecSession, SpecSessionError, SpecSnapshot, DEFAULT_SESSION,
};
use crate::spec::SystemSpec;
use compc_core::{CheckOptions, SessionError, Verdict};
use compc_json::Value;
use compc_trace::{event_to_ndjson_line, TraceEvent};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One parsed request, routed to its session's shard. Readers do the JSON
/// and spec parsing, so shards only apply.
pub(crate) struct Request {
    /// The connection's response channel (one line per request line).
    pub resp: Sender<String>,
    /// Session the request addresses (`"default"` when the field is
    /// absent).
    pub session: String,
    /// The line matched `--inject-panic`: the handler must panic inside
    /// its isolation boundary.
    pub panic_flagged: bool,
    pub body: RequestBody,
}

pub(crate) enum RequestBody {
    /// A parsed `{"append": {...}}` fragment.
    Append(Box<SystemSpec>),
    /// `{"op": "stats"}`.
    Stats,
    /// `{"op": "checkpoint"}` — forwarded to the control thread.
    Checkpoint,
    /// `{"op": "shutdown"}` — forwarded to the control thread.
    Shutdown,
    /// The reader rejected the line before dispatch (not JSON, bad spec,
    /// oversize, idle timeout, ...); routed through the queue so the
    /// structured error still lands in request order.
    Malformed { kind: &'static str, error: String },
}

/// What the connection layer (or the control thread) sends a shard.
pub(crate) enum ShardMsg {
    Request(Request),
    /// Flush, serialize sessions, reply, then block until resumed.
    Freeze {
        reply: Sender<FrozenShard>,
        resume: Receiver<ResumeAction>,
    },
    /// Keep serving until the shard's queue is quiet or the deadline
    /// passes, then behave like `Freeze`.
    Drain {
        deadline: Instant,
        reply: Sender<FrozenShard>,
        resume: Receiver<ResumeAction>,
    },
}

/// One serialized session: `(name, appends, spec JSON)`.
pub(crate) type SessionEntry = (String, u64, Value);

/// A frozen shard's serialized sessions.
pub(crate) struct FrozenShard {
    pub sessions: Vec<SessionEntry>,
}

pub(crate) enum ResumeAction {
    Continue,
    Exit,
}

/// Global operations forwarded to the control thread.
pub(crate) enum CtrlMsg {
    Checkpoint {
        resp: Sender<String>,
    },
    Shutdown {
        resp: Sender<String>,
    },
    /// A connection went away (drives `--once`).
    Disconnected,
}

/// Response channels of the live connections, by connection id. The
/// accept loop inserts, readers look their own entry up per request, and
/// the control thread clears the map at drain so writers flush and shut
/// their sockets down.
pub(crate) type Conns = Arc<Mutex<HashMap<u64, Sender<String>>>>;

/// Outcome counters for a completed serve run; the process exit code is
/// derived from them.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServeReport {
    /// Appends whose verdict was a Comp-C violation.
    pub violations: u64,
    /// Appends interrupted by the per-append deadline.
    pub interruptions: u64,
    /// Engine/oracle disagreements under `--oracle`.
    pub disagreements: u64,
    /// Requests whose handler panicked (isolated, answered `internal`).
    pub internal_faults: u64,
}

impl ServeReport {
    /// The `compc-serve` exit code: 0 = clean and all Comp-C; 1 = at least
    /// one violation served; 2 = oracle disagreement or isolated internal
    /// fault (takes precedence); 3 = at least one deadline interruption.
    pub fn exit_code(&self) -> u8 {
        if self.disagreements > 0 || self.internal_faults > 0 {
            2
        } else if self.interruptions > 0 {
            3
        } else if self.violations > 0 {
            1
        } else {
            0
        }
    }

    pub(crate) fn from_gauges(gauges: &Gauges) -> ServeReport {
        ServeReport {
            violations: gauges.violations.load(Ordering::SeqCst),
            interruptions: gauges.interruptions.load(Ordering::SeqCst),
            disagreements: gauges.disagreements.load(Ordering::SeqCst),
            internal_faults: gauges.internal_faults.load(Ordering::SeqCst),
        }
    }
}

pub(crate) fn ok_object(mut fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![("ok".to_string(), Value::from(true))];
    entries.append(&mut fields);
    Value::Object(entries)
}

pub(crate) fn error_object(kind: &str, message: String) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::from(false)),
        ("kind".to_string(), Value::from(kind)),
        ("error".to_string(), Value::from(message)),
    ])
}

/// Renders a panic payload the way the engine's worker pool does (strings
/// pass through, anything else gets a stable placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Locks a mutex, riding out poisoning: a panic in another thread while
/// it held the journal already failed that batch (no acks were sent), so
/// the journal file itself is still consistent.
fn lock_journal(journal: &Mutex<Journal>) -> std::sync::MutexGuard<'_, Journal> {
    journal
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Mirrors the serving gauges as one `serve_gauges` trace event on stdout
/// (emitted on each `stats` op and at drain).
pub(crate) fn emit_gauges(
    config: &ServeConfig,
    gauges: &Gauges,
    journal: Option<&Arc<Mutex<Journal>>>,
) {
    if !config.trace {
        return;
    }
    let mut batch_buckets: Vec<u64> = gauges
        .batch_buckets
        .iter()
        .map(|b| b.load(Ordering::SeqCst))
        .collect();
    while batch_buckets.last() == Some(&0) && batch_buckets.len() > 1 {
        batch_buckets.pop();
    }
    let event = TraceEvent::ServeGauges {
        connections: gauges.connections.load(Ordering::SeqCst),
        peak_connections: gauges.peak_connections.load(Ordering::SeqCst),
        queue_depth: gauges.queue_depth.load(Ordering::SeqCst),
        shed: gauges.shed.load(Ordering::SeqCst),
        journal_lag: journal.map_or(0, |j| lock_journal(j).records()),
        internal_faults: gauges.internal_faults.load(Ordering::SeqCst),
        fsyncs: gauges.fsyncs.load(Ordering::SeqCst),
        fsyncs_saved: gauges.fsyncs_saved.load(Ordering::SeqCst),
        batch_buckets,
        batch_max: gauges.batch_max.load(Ordering::SeqCst),
        shard_depths: gauges
            .shard_depths
            .iter()
            .map(|d| d.load(Ordering::SeqCst))
            .collect(),
    };
    println!("{}", event_to_ndjson_line(&event, Some("serve")));
}

/// Records one flushed commit batch in the log2-bucket histogram.
fn record_batch_size(gauges: &Gauges, records: u64) {
    let bucket = (63 - records.leading_zeros() as usize).min(gauges.batch_buckets.len() - 1);
    gauges.batch_buckets[bucket].fetch_add(1, Ordering::SeqCst);
    gauges.batch_max.fetch_max(records, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Shard threads
// ---------------------------------------------------------------------------

/// One applied-but-not-yet-acked batch member.
struct BatchEntry {
    resp: Sender<String>,
    response: Value,
    /// `Some` when the response acks an applied append and must wait for
    /// the batch's durability flush: `(session, seq, fragment)`.
    record: Option<(String, u64, SystemSpec)>,
    violation: bool,
}

/// A forming commit batch.
#[derive(Default)]
struct Batch {
    entries: Vec<BatchEntry>,
    /// Earliest (pre-batch) snapshot per touched session, for whole-batch
    /// rollback if the durability write fails.
    snapshots: HashMap<String, SpecSnapshot>,
}

enum Flow {
    Continue,
    Exit,
}

/// One dispatch shard: the single owner of its partition of the sessions.
pub(crate) struct Shard {
    pub index: usize,
    pub sessions: HashMap<String, SpecSession>,
    pub journal: Option<Arc<Mutex<Journal>>>,
    pub config: ServeConfig,
    /// Options new sessions are created with (deadline included — catch-up
    /// replay is done by the time shards run).
    pub options: CheckOptions,
    pub gauges: Arc<Gauges>,
    pub ctrl: Sender<CtrlMsg>,
}

/// Runs one shard to completion: serves until the control thread resumes
/// it with `Exit` (or every sender is gone).
pub(crate) fn shard_loop(rx: Receiver<ShardMsg>, mut shard: Shard) {
    let mut batch = Batch::default();
    loop {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => return,
        };
        if let Flow::Exit = shard.serve_msg(msg, &rx, &mut batch) {
            return;
        }
    }
}

impl Shard {
    fn serve_msg(&mut self, msg: ShardMsg, rx: &Receiver<ShardMsg>, batch: &mut Batch) -> Flow {
        match msg {
            ShardMsg::Request(req) => {
                self.admit(req, batch);
                // Group commit: opportunistically drain more contiguous
                // queued appends into the batch — never waiting, so an
                // isolated request still flushes immediately. Admitting a
                // non-append flushes the batch first, which also ends the
                // collection loop.
                let mut deferred = None;
                while !batch.entries.is_empty()
                    && batch.entries.len() < self.config.commit_batch.max(1)
                {
                    match rx.try_recv() {
                        Ok(ShardMsg::Request(next)) => self.admit(next, batch),
                        Ok(other) => {
                            deferred = Some(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                self.flush(batch);
                match deferred {
                    Some(m) => self.serve_msg(m, rx, batch),
                    None => Flow::Continue,
                }
            }
            ShardMsg::Freeze { reply, resume } => {
                self.flush(batch);
                let _ = reply.send(self.frozen());
                match resume.recv() {
                    Ok(ResumeAction::Continue) => Flow::Continue,
                    _ => Flow::Exit,
                }
            }
            ShardMsg::Drain {
                deadline,
                reply,
                resume,
            } => {
                self.drain_queue(rx, deadline, batch);
                let _ = reply.send(self.frozen());
                match resume.recv() {
                    Ok(ResumeAction::Continue) => Flow::Continue,
                    _ => Flow::Exit,
                }
            }
        }
    }

    /// Keeps answering already-queued (and still-arriving) requests until
    /// this shard's queue is quiet or the drain deadline expires.
    fn drain_queue(&mut self, rx: &Receiver<ShardMsg>, deadline: Instant, batch: &mut Batch) {
        loop {
            if Instant::now() >= deadline {
                break;
            }
            match rx.try_recv() {
                Ok(ShardMsg::Request(req)) => {
                    self.admit(req, batch);
                    if batch.entries.len() >= self.config.commit_batch.max(1) {
                        self.flush(batch);
                    }
                }
                // Another freeze during a drain cannot happen (only the
                // control thread sends them, strictly one protocol at a
                // time); drop it defensively rather than deadlock.
                Ok(_) => {}
                Err(TryRecvError::Empty) => {
                    self.flush(batch);
                    // A reader may have bumped the gauge but not finished
                    // its send yet; only a quiet queue ends the drain.
                    if self.gauges.shard_depths[self.index].load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(TryRecvError::Disconnected) => break,
            }
        }
        self.flush(batch);
    }

    /// Serializes this shard's sessions for a checkpoint document.
    fn frozen(&self) -> FrozenShard {
        FrozenShard {
            sessions: self
                .sessions
                .iter()
                .map(|(name, s)| (name.clone(), s.stats().appends, s.spec().to_json()))
                .collect(),
        }
    }

    /// Dequeues one request: appends are staged into the batch, anything
    /// else flushes the batch (responses stay in request order) and is
    /// handled directly.
    fn admit(&mut self, req: Request, batch: &mut Batch) {
        self.gauges.queue_depth.fetch_sub(1, Ordering::SeqCst);
        self.gauges.shard_depths[self.index].fetch_sub(1, Ordering::SeqCst);
        let Request {
            resp,
            session,
            panic_flagged,
            body,
        } = req;
        match body {
            RequestBody::Append(fragment) => {
                self.stage_append(resp, session, panic_flagged, *fragment, batch)
            }
            other => {
                self.flush(batch);
                self.handle_op(resp, session, panic_flagged, other);
            }
        }
    }

    fn handle_op(
        &mut self,
        resp: Sender<String>,
        session: String,
        panic_flagged: bool,
        body: RequestBody,
    ) {
        if panic_flagged {
            let response = self.injected_panic_response();
            let _ = resp.send(response.to_compact());
            return;
        }
        match body {
            RequestBody::Stats => {
                emit_gauges(&self.config, &self.gauges, self.journal.as_ref());
                let response = self.stats_response(&session);
                let _ = resp.send(response.to_compact());
            }
            RequestBody::Checkpoint => {
                let _ = self.ctrl.send(CtrlMsg::Checkpoint { resp });
            }
            RequestBody::Shutdown => {
                let _ = self.ctrl.send(CtrlMsg::Shutdown { resp });
            }
            RequestBody::Malformed { kind, error } => {
                let _ = resp.send(error_object(kind, error).to_compact());
            }
            RequestBody::Append(_) => unreachable!("appends are staged, not handled as ops"),
        }
    }

    /// `--inject-panic` matched an op line: panic inside the isolation
    /// boundary exactly like a flagged append would.
    fn injected_panic_response(&self) -> Value {
        let payload = catch_unwind(|| {
            panic!("injected fault: request matched --inject-panic token");
        })
        .expect_err("the closure always panics");
        self.gauges.internal_faults.fetch_add(1, Ordering::SeqCst);
        let message = panic_message(payload);
        eprintln!("request handler panicked (session restored): {message}");
        error_object(
            "internal",
            format!("request handler panicked: {message}; session state restored"),
        )
    }

    /// Applies one append to its session and stages the (unsent) response
    /// in the batch. A panic anywhere in the handler is confined to this
    /// request: the session is rolled back to its pre-request snapshot and
    /// the entry becomes a structured `internal` error.
    fn stage_append(
        &mut self,
        resp: Sender<String>,
        session_name: String,
        panic_flagged: bool,
        fragment: SystemSpec,
        batch: &mut Batch,
    ) {
        let fresh = !self.sessions.contains_key(&session_name);
        if fresh {
            self.gauges.sessions.fetch_add(1, Ordering::SeqCst);
        }
        let options = self.options;
        let session = self
            .sessions
            .entry(session_name.clone())
            .or_insert_with(|| SpecSession::with_options(options));
        // One snapshot per touched session per *batch*, not per append:
        // the snapshot clones the accumulated spec, so amortizing it is a
        // large share of the group-commit win. Batch-failure rollback uses
        // it directly; the per-request panic path reconstructs pre-request
        // state from it plus the batch's staged fragments.
        if !batch.snapshots.contains_key(&session_name) {
            batch
                .snapshots
                .insert(session_name.clone(), session.snapshot());
        }
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if panic_flagged {
                panic!("injected fault: request matched --inject-panic token");
            }
            session.append(&fragment).cloned()
        }));
        let entry = match outcome {
            Ok(Ok(verdict)) => {
                let elapsed_ns = started.elapsed().as_nanos() as u64;
                emit_trace(&self.config, &session_name, session, &verdict, elapsed_ns);
                let seq = session.stats().appends;
                let response = verdict_response(&session_name, session, &verdict);
                BatchEntry {
                    resp,
                    response,
                    record: Some((session_name, seq, fragment)),
                    violation: !verdict.is_correct(),
                }
            }
            Ok(Err(SpecSessionError::Session(SessionError::Interrupted(e)))) => {
                // The merged spec is kept for resume, so the session stays
                // (even a fresh one) — re-appending the same fragment
                // resumes from the completed levels.
                self.gauges.interruptions.fetch_add(1, Ordering::SeqCst);
                let mut response = error_object("interrupted", e.to_string());
                if let Value::Object(entries) = &mut response {
                    entries.push(("resumable".to_string(), Value::from(true)));
                }
                BatchEntry {
                    resp,
                    response,
                    record: None,
                    violation: false,
                }
            }
            Ok(Err(SpecSessionError::OracleDisagreement { engine_correct })) => {
                self.gauges.disagreements.fetch_add(1, Ordering::SeqCst);
                BatchEntry {
                    resp,
                    response: error_object(
                        "oracle-disagreement",
                        SpecSessionError::OracleDisagreement { engine_correct }.to_string(),
                    ),
                    record: None,
                    violation: false,
                }
            }
            Ok(Err(e)) => {
                // Spec-level rejection leaves the session untouched; a
                // session created only for this failed append is removed
                // again so checkpoints don't accumulate empty entries.
                if fresh {
                    self.remove_fresh(&session_name);
                }
                let response = match e {
                    SpecSessionError::Session(e) => error_object("invalid", e.to_string()),
                    e => error_object("spec", e.to_string()),
                };
                BatchEntry {
                    resp,
                    response,
                    record: None,
                    violation: false,
                }
            }
            Err(payload) => {
                if fresh {
                    // A session created by the panicking append itself has
                    // no staged records; removing it is the restore.
                    self.remove_fresh(&session_name);
                } else {
                    self.repair_after_panic(&session_name, batch);
                }
                self.gauges.internal_faults.fetch_add(1, Ordering::SeqCst);
                let message = panic_message(payload);
                eprintln!("request handler panicked (session restored): {message}");
                BatchEntry {
                    resp,
                    response: error_object(
                        "internal",
                        format!("request handler panicked: {message}; session state restored"),
                    ),
                    record: None,
                    violation: false,
                }
            }
        };
        batch.entries.push(entry);
    }

    fn remove_fresh(&mut self, name: &str) {
        if self.sessions.remove(name).is_some() {
            self.gauges.sessions.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Rebuilds a session's pre-request state after a handler panic
    /// without a per-request snapshot: restore the pre-batch snapshot,
    /// re-capture it for batch-failure rollback, then replay the batch's
    /// staged fragments for that session (each succeeded deterministically
    /// moments ago, so the replay lands exactly at the pre-request state,
    /// seqs included). A panic *during that replay* would desynchronize
    /// memory from the journal, so it is fail-stop: journal recovery on
    /// restart rebuilds the state instead.
    fn repair_after_panic(&mut self, session_name: &str, batch: &mut Batch) {
        let Some(snapshot) = batch.snapshots.remove(session_name) else {
            return;
        };
        let Some(session) = self.sessions.get_mut(session_name) else {
            return;
        };
        session.restore(snapshot);
        batch
            .snapshots
            .insert(session_name.to_string(), session.snapshot());
        let replay = catch_unwind(AssertUnwindSafe(|| {
            for entry in &batch.entries {
                if let Some((name, _, fragment)) = &entry.record {
                    if name == session_name {
                        let _ = session.append(fragment);
                    }
                }
            }
        }));
        if replay.is_err() {
            eprintln!(
                "fatal: replaying staged appends for session {session_name:?} panicked \
                 while recovering from a handler panic; aborting so journal recovery \
                 rebuilds the state"
            );
            std::process::abort();
        }
    }

    /// Flushes the forming batch: one journal write + one fsync covering
    /// every staged record, then the responses in order. No member is
    /// acked before the fsync that covers all of them; a failed write
    /// rolls every touched session back and converts every would-be ack
    /// into a structured error.
    fn flush(&mut self, batch: &mut Batch) {
        if batch.entries.is_empty() {
            batch.snapshots.clear();
            return;
        }
        let record_count = batch.entries.iter().filter(|e| e.record.is_some()).count() as u64;
        let mut failure: Option<(&'static str, String)> = None;
        if record_count > 0 {
            if let Some(journal) = &self.journal {
                let records: Vec<BatchRecord<'_>> = batch
                    .entries
                    .iter()
                    .filter_map(|e| e.record.as_ref())
                    .map(|(s, q, f)| (s.as_str(), *q, f))
                    .collect();
                match lock_journal(journal).append_batch(&records) {
                    Ok(()) => {
                        self.gauges.fsyncs.fetch_add(1, Ordering::SeqCst);
                        self.gauges
                            .fsyncs_saved
                            .fetch_add(record_count - 1, Ordering::SeqCst);
                    }
                    Err(e) => failure = Some(("journal", e)),
                }
            } else if self.config.checkpoint.is_some() {
                // Without a journal, durability-before-ack means a full
                // checkpoint rewrite — once per batch, covering all of it
                // (single-shard only; enforced at startup).
                if let Err(e) = self.save_shard_checkpoint() {
                    failure = Some(("checkpoint", e));
                }
            }
            if failure.is_none() {
                record_batch_size(&self.gauges, record_count);
            }
        }
        match failure {
            Some((kind, e)) => {
                for (name, snapshot) in batch.snapshots.drain() {
                    if let Some(session) = self.sessions.get_mut(&name) {
                        session.restore(snapshot);
                        if session.stats().appends == 0 && session.spec().nodes.is_empty() {
                            self.remove_fresh(&name);
                        }
                    }
                }
                eprintln!(
                    "commit batch of {record_count} append(s) failed ({e}); \
                     rolled back, no acks sent"
                );
                for entry in batch.entries.drain(..) {
                    let response = if entry.record.is_some() {
                        error_object(kind, e.clone())
                    } else {
                        entry.response
                    };
                    let _ = entry.resp.send(response.to_compact());
                }
            }
            None => {
                for entry in batch.entries.drain(..) {
                    if entry.record.is_some() {
                        self.gauges.appends.fetch_add(1, Ordering::SeqCst);
                        if entry.violation {
                            self.gauges.violations.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    let _ = entry.resp.send(entry.response.to_compact());
                }
                batch.snapshots.clear();
            }
        }
    }

    /// The no-journal durability path: rewrite the checkpoint covering
    /// this shard's sessions (which, single-shard, is all of them).
    fn save_shard_checkpoint(&self) -> Result<(), String> {
        let Some(path) = &self.config.checkpoint else {
            return Ok(());
        };
        let entries = self
            .sessions
            .iter()
            .map(|(name, s)| (name.clone(), s.stats().appends, s.spec().to_json()))
            .collect();
        super::journal::write_checkpoint_file(path, &sessions_checkpoint_json(entries))
    }

    fn stats_response(&self, session_name: &str) -> Value {
        let gauges = &self.gauges;
        let load = |g: &std::sync::atomic::AtomicU64| Value::from(g.load(Ordering::SeqCst));
        let session_stats = self.sessions.get(session_name).map(SpecSession::stats);
        let s = |f: fn(&compc_core::SessionStats) -> u64| {
            Value::from(session_stats.as_ref().map_or(0, f))
        };
        let (journal_records, journal_bytes) = match &self.journal {
            Some(j) => {
                let guard = lock_journal(j);
                (guard.records(), guard.bytes())
            }
            None => (0, 0),
        };
        ok_object(vec![
            ("appends".to_string(), load(&gauges.appends)),
            ("session".to_string(), Value::from(session_name)),
            ("shard".to_string(), Value::from(self.index)),
            ("session_appends".to_string(), s(|st| st.appends)),
            ("levels_computed".to_string(), s(|st| st.levels_computed)),
            ("levels_reused".to_string(), s(|st| st.levels_reused)),
            ("rows_recomputed".to_string(), s(|st| st.rows_recomputed)),
            ("rows_spliced".to_string(), s(|st| st.rows_spliced)),
            ("violations".to_string(), load(&gauges.violations)),
            ("interruptions".to_string(), load(&gauges.interruptions)),
            ("internal_faults".to_string(), load(&gauges.internal_faults)),
            ("connections".to_string(), load(&gauges.connections)),
            (
                "peak_connections".to_string(),
                load(&gauges.peak_connections),
            ),
            ("accepted".to_string(), load(&gauges.accepted)),
            ("shed".to_string(), load(&gauges.shed)),
            ("idle_closed".to_string(), load(&gauges.idle_closed)),
            ("oversize_lines".to_string(), load(&gauges.oversize_lines)),
            ("queue_depth".to_string(), load(&gauges.queue_depth)),
            ("sessions".to_string(), load(&gauges.sessions)),
            (
                "dispatch_shards".to_string(),
                Value::from(gauges.shard_depths.len()),
            ),
            (
                "commit_batch".to_string(),
                Value::from(self.config.commit_batch.max(1)),
            ),
            ("fsyncs".to_string(), load(&gauges.fsyncs)),
            ("fsyncs_saved".to_string(), load(&gauges.fsyncs_saved)),
            ("batch_max".to_string(), load(&gauges.batch_max)),
            ("journal_records".to_string(), Value::from(journal_records)),
            ("journal_bytes".to_string(), Value::from(journal_bytes)),
        ])
    }
}

/// The one verdict line per append: the stats ride along so a client can
/// watch the incremental path work (`levels_reused` growing).
fn verdict_response(session_name: &str, session: &SpecSession, verdict: &Verdict) -> Value {
    let stats = session.stats();
    let mut fields = vec![
        (
            "verdict".to_string(),
            Value::from(if verdict.is_correct() {
                "comp-c"
            } else {
                "not-comp-c"
            }),
        ),
        ("session".to_string(), Value::from(session_name)),
        ("appends".to_string(), Value::from(stats.appends)),
    ];
    if let Some(sys) = session.system() {
        fields.push(("nodes".to_string(), Value::from(sys.node_count())));
        fields.push(("order".to_string(), Value::from(sys.order())));
    }
    fields.push((
        "levels_reused".to_string(),
        Value::from(stats.levels_reused),
    ));
    fields.push(("rows_spliced".to_string(), Value::from(stats.rows_spliced)));
    if let Verdict::Incorrect(cex) = verdict {
        fields.push(("level".to_string(), Value::from(cex.level)));
        fields.push(("phase".to_string(), Value::from(cex.phase.tag())));
        fields.push(("cycle".to_string(), Value::from(cex.cycle_names.clone())));
    }
    ok_object(fields)
}

/// Mirrors one append as `compc-trace` `check_start`/`check_end` events
/// on stdout (the socket carries the responses, so stdout is a pure event
/// stream).
fn emit_trace(
    config: &ServeConfig,
    session_name: &str,
    session: &SpecSession,
    verdict: &Verdict,
    elapsed_ns: u64,
) {
    if !config.trace {
        return;
    }
    let Some(sys) = session.system() else {
        return;
    };
    let label = if session_name == DEFAULT_SESSION {
        format!("append-{}", session.stats().appends)
    } else {
        format!("{session_name}:append-{}", session.stats().appends)
    };
    let start = TraceEvent::CheckStart {
        nodes: sys.node_count(),
        schedules: sys.schedule_count(),
        order: sys.order(),
    };
    let end = match verdict {
        Verdict::Correct(_) => TraceEvent::CheckEnd {
            correct: true,
            levels_completed: sys.order(),
            failed_level: None,
            failed_phase: None,
            elapsed_ns,
        },
        Verdict::Incorrect(cex) => TraceEvent::CheckEnd {
            correct: false,
            levels_completed: cex.level.saturating_sub(1),
            failed_level: Some(cex.level),
            failed_phase: Some(cex.phase.tag()),
            elapsed_ns,
        },
    };
    println!("{}", event_to_ndjson_line(&start, Some(&label)));
    println!("{}", event_to_ndjson_line(&end, Some(&label)));
}

// ---------------------------------------------------------------------------
// Control thread
// ---------------------------------------------------------------------------

/// Everything the control thread needs to coordinate global operations.
pub(crate) struct Control {
    pub shard_txs: Vec<SyncSender<ShardMsg>>,
    pub journal: Option<Arc<Mutex<Journal>>>,
    pub config: ServeConfig,
    pub gauges: Arc<Gauges>,
    pub conns: Conns,
    pub stop: Arc<std::sync::atomic::AtomicBool>,
}

/// Runs the control thread to completion: coordinates checkpoint and
/// shutdown ops, termination signals, and (with `--once`) the first
/// disconnect, then drains every shard and persists.
pub(crate) fn control_loop(rx: Receiver<CtrlMsg>, control: Control) -> Result<(), String> {
    loop {
        if super::term_requested() {
            eprintln!("termination signal received: draining");
            return control.drain_and_exit();
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(CtrlMsg::Checkpoint { resp }) => {
                let response = match control.save_all(true) {
                    Ok(true) => {
                        let target = control
                            .config
                            .checkpoint
                            .clone()
                            .expect("saved implies a path");
                        ok_object(vec![
                            ("checkpoint".to_string(), Value::from(target)),
                            ("saved".to_string(), Value::from(true)),
                        ])
                    }
                    Ok(false) => ok_object(vec![
                        (
                            "checkpoint".to_string(),
                            Value::from("(no --checkpoint file configured)"),
                        ),
                        ("saved".to_string(), Value::from(false)),
                    ]),
                    Err(e) => error_object("checkpoint", e),
                };
                let _ = resp.send(response.to_compact());
            }
            // Save *here*, not just in the drain epilogue, so the response
            // can report honestly whether state was persisted — without
            // `--checkpoint` nothing is saved and the client is told so.
            Ok(CtrlMsg::Shutdown { resp }) => {
                let response = match control.save_all(false) {
                    Ok(saved) => ok_object(vec![
                        ("shutdown".to_string(), Value::from(true)),
                        ("saved".to_string(), Value::from(saved)),
                    ]),
                    // A failing disk must not make the daemon unstoppable:
                    // the client gets the error, the daemon still drains
                    // and exits.
                    Err(e) => {
                        let mut response = error_object("checkpoint", e);
                        if let Value::Object(entries) = &mut response {
                            entries.push(("shutdown".to_string(), Value::from(true)));
                        }
                        response
                    }
                };
                let _ = resp.send(response.to_compact());
                return control.drain_and_exit();
            }
            Ok(CtrlMsg::Disconnected) => {
                if control.config.once {
                    return control.drain_and_exit();
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            // Every sender gone without a shutdown decision: save and stop.
            Err(RecvTimeoutError::Disconnected) => return control.drain_and_exit(),
        }
    }
}

impl Control {
    /// Freezes every shard (optionally letting each drain its queue until
    /// `drain_deadline` first) and collects their serialized sessions.
    /// Returns the resume handles — the caller must resume every shard.
    fn freeze_all(
        &self,
        drain_deadline: Option<Instant>,
    ) -> (Vec<Sender<ResumeAction>>, Vec<SessionEntry>) {
        let mut resumes = Vec::with_capacity(self.shard_txs.len());
        let mut replies = Vec::with_capacity(self.shard_txs.len());
        for (index, tx) in self.shard_txs.iter().enumerate() {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel();
            let (resume_tx, resume_rx) = std::sync::mpsc::channel();
            let msg = match drain_deadline {
                Some(deadline) => ShardMsg::Drain {
                    deadline,
                    reply: reply_tx,
                    resume: resume_rx,
                },
                None => ShardMsg::Freeze {
                    reply: reply_tx,
                    resume: resume_rx,
                },
            };
            if tx.send(msg).is_ok() {
                replies.push(reply_rx);
                resumes.push(resume_tx);
            } else {
                eprintln!("shard {index} is gone; its sessions are not in this save");
            }
        }
        let mut sessions = Vec::new();
        for reply in replies {
            if let Ok(frozen) = reply.recv() {
                sessions.extend(frozen.sessions);
            }
        }
        (resumes, sessions)
    }

    /// Freeze-round save: checkpoint every session, optionally compacting
    /// the journal (checkpoint first, truncation second — a crash between
    /// the two only leaves records whose appends the new checkpoint
    /// already covers; replay skips them by sequence number).
    fn save_all(&self, truncate: bool) -> Result<bool, String> {
        let (resumes, sessions) = self.freeze_all(None);
        let result = self.persist(sessions, truncate);
        for resume in resumes {
            let _ = resume.send(ResumeAction::Continue);
        }
        result
    }

    fn persist(&self, sessions: Vec<(String, u64, Value)>, truncate: bool) -> Result<bool, String> {
        let Some(path) = &self.config.checkpoint else {
            return Ok(false);
        };
        super::journal::write_checkpoint_file(path, &sessions_checkpoint_json(sessions))?;
        if truncate {
            if let Some(journal) = &self.journal {
                lock_journal(journal).truncate()?;
            }
        }
        Ok(true)
    }

    /// Stops accepting, lets every shard drain under `--drain-timeout-ms`,
    /// flushes writers, persists, and releases the shards to exit.
    fn drain_and_exit(&self) -> Result<(), String> {
        self.stop.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_millis(self.config.drain_timeout_ms.max(1));
        let (resumes, sessions) = self.freeze_all(Some(deadline));
        let abandoned = self.gauges.queue_depth.load(Ordering::SeqCst);
        if abandoned > 0 {
            eprintln!(
                "drain deadline expired with {abandoned} request(s) still queued; \
                 abandoning them (none were acked)"
            );
        }
        emit_gauges(&self.config, &self.gauges, self.journal.as_ref());
        // Dropping the response senders lets each writer thread flush its
        // buffered lines and shut its socket down, which in turn unblocks
        // readers so the accept thread can join everything.
        self.conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clear();
        let result = self.persist(sessions, true).map(|_| ());
        for resume in resumes {
            let _ = resume.send(ResumeAction::Exit);
        }
        result
    }
}
