//! The single dispatch thread: owns the [`SpecSession`], the journal, and
//! the outcome counters; serves every request in arrival order.
//!
//! Requests arrive over one bounded mpsc channel from the per-connection
//! reader threads and responses leave through per-connection writer
//! channels, so the checking path needs no locks and per-connection FIFO
//! order is preserved end to end. Each request is dispatched under
//! `catch_unwind`: a panicking handler answers that one request with a
//! structured `internal` error, restores the pre-request session snapshot,
//! and the daemon keeps serving everyone else.

use super::journal::Journal;
use super::{Gauges, ServeConfig};
use crate::session::{SpecSession, SpecSessionError, SpecSnapshot};
use compc_core::{SessionError, Verdict};
use compc_json::Value;
use compc_trace::{event_to_ndjson_line, TraceEvent};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the connection layer tells the dispatch thread.
pub(crate) enum Msg {
    /// A connection was accepted; `resp` feeds its writer thread.
    Connected { conn: u64, resp: Sender<String> },
    /// One complete request line from a connection.
    Line { conn: u64, line: String },
    /// The reader rejected input before dispatch (oversize line, invalid
    /// UTF-8, idle timeout); routed through the queue so the structured
    /// error still lands in request order.
    Malformed {
        conn: u64,
        kind: &'static str,
        error: String,
    },
    /// The connection is gone (EOF, error, or timeout close).
    Disconnected { conn: u64 },
}

enum Control {
    Continue,
    Shutdown,
}

/// Outcome counters for a completed serve run; the process exit code is
/// derived from them.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServeReport {
    /// Appends whose verdict was a Comp-C violation.
    pub violations: u64,
    /// Appends interrupted by the per-append deadline.
    pub interruptions: u64,
    /// Engine/oracle disagreements under `--oracle`.
    pub disagreements: u64,
    /// Requests whose handler panicked (isolated, answered `internal`).
    pub internal_faults: u64,
}

impl ServeReport {
    /// The `compc-serve` exit code: 0 = clean and all Comp-C; 1 = at least
    /// one violation served; 2 = oracle disagreement or isolated internal
    /// fault (takes precedence); 3 = at least one deadline interruption.
    pub fn exit_code(&self) -> u8 {
        if self.disagreements > 0 || self.internal_faults > 0 {
            2
        } else if self.interruptions > 0 {
            3
        } else if self.violations > 0 {
            1
        } else {
            0
        }
    }
}

pub(crate) fn ok_object(mut fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![("ok".to_string(), Value::from(true))];
    entries.append(&mut fields);
    Value::Object(entries)
}

pub(crate) fn error_object(kind: &str, message: String) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::from(false)),
        ("kind".to_string(), Value::from(kind)),
        ("error".to_string(), Value::from(message)),
    ])
}

/// Renders a panic payload the way the engine's worker pool does (strings
/// pass through, anything else gets a stable placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// All daemon state, owned by the dispatch thread.
pub(crate) struct Daemon {
    session: SpecSession,
    journal: Option<Journal>,
    config: ServeConfig,
    gauges: Arc<Gauges>,
    /// Response channels of the live connections, by connection id.
    conns: HashMap<u64, Sender<String>>,
    /// Pre-request session snapshot, captured for appends only. Consumed
    /// by whichever failure path fires first — a panic, or a durability
    /// write error — so the session never runs ahead of what the journal
    /// and checkpoint can reconstruct.
    pending_snapshot: Option<SpecSnapshot>,
    report: ServeReport,
}

/// Runs the dispatch thread to completion: serves until a `shutdown` op, a
/// termination signal, or (with `--once`) the first disconnect, then
/// drains and saves.
pub(crate) fn dispatch_loop(
    rx: Receiver<Msg>,
    daemon: &mut Daemon,
    stop: &AtomicBool,
) -> Result<(), String> {
    loop {
        if super::term_requested() {
            eprintln!("termination signal received: draining");
            return daemon.drain(&rx, stop);
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(msg) => {
                if let Control::Shutdown = daemon.handle_msg(msg) {
                    return daemon.drain(&rx, stop);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            // Accept side gone without a shutdown decision: save and stop.
            Err(RecvTimeoutError::Disconnected) => return daemon.final_save(),
        }
    }
}

impl Daemon {
    pub fn new(
        session: SpecSession,
        journal: Option<Journal>,
        config: ServeConfig,
        gauges: Arc<Gauges>,
    ) -> Daemon {
        Daemon {
            session,
            journal,
            config,
            gauges,
            conns: HashMap::new(),
            pending_snapshot: None,
            report: ServeReport::default(),
        }
    }

    pub fn report(&self) -> ServeReport {
        self.report
    }

    /// Stops accepting, keeps answering already-queued (and still-arriving)
    /// requests until the queue is quiet or `--drain-timeout-ms` expires,
    /// then flushes writers and persists.
    fn drain(&mut self, rx: &Receiver<Msg>, stop: &AtomicBool) -> Result<(), String> {
        stop.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_millis(self.config.drain_timeout_ms.max(1));
        loop {
            if Instant::now() >= deadline {
                let abandoned = self.gauges.queue_depth.load(Ordering::SeqCst);
                if abandoned > 0 {
                    eprintln!(
                        "drain deadline expired with {abandoned} request(s) still queued; \
                         abandoning them (none were acked)"
                    );
                }
                break;
            }
            match rx.try_recv() {
                // Shutdown decisions during a drain are already in effect.
                Ok(msg) => {
                    let _ = self.handle_msg(msg);
                }
                Err(TryRecvError::Empty) => {
                    // A reader may have bumped the gauge but not finished
                    // its send yet; only a quiet queue ends the drain.
                    if self.gauges.queue_depth.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(TryRecvError::Disconnected) => break,
            }
        }
        self.emit_gauges();
        // Dropping the response senders lets each writer thread flush its
        // buffered lines and shut its socket down, which in turn unblocks
        // readers so the accept thread can join everything.
        self.conns.clear();
        self.final_save()
    }

    /// The end-of-run persist: checkpoint plus journal compaction.
    fn final_save(&mut self) -> Result<(), String> {
        self.save_checkpoint_and_compact().map(|_| ())
    }

    fn handle_msg(&mut self, msg: Msg) -> Control {
        match msg {
            Msg::Connected { conn, resp } => {
                self.conns.insert(conn, resp);
                Control::Continue
            }
            Msg::Disconnected { conn } => {
                self.conns.remove(&conn);
                if self.config.once {
                    Control::Shutdown
                } else {
                    Control::Continue
                }
            }
            Msg::Malformed { conn, kind, error } => {
                self.gauges.queue_depth.fetch_sub(1, Ordering::SeqCst);
                self.respond(conn, error_object(kind, error));
                Control::Continue
            }
            Msg::Line { conn, line } => {
                self.gauges.queue_depth.fetch_sub(1, Ordering::SeqCst);
                let (response, control) = self.dispatch_line(&line);
                self.respond(conn, response);
                control
            }
        }
    }

    fn respond(&self, conn: u64, response: Value) {
        if let Some(resp) = self.conns.get(&conn) {
            // A dead writer just means the client is gone; its connection
            // teardown arrives as a Disconnected message.
            let _ = resp.send(response.to_compact());
        }
    }

    /// Serves one request line under panic isolation. A panic anywhere in
    /// the handler — parser, merge, engine — is confined to this request:
    /// the session is rolled back to its pre-request snapshot and the
    /// connection gets a structured `internal` error.
    fn dispatch_line(&mut self, line: &str) -> (Value, Control) {
        let request = match compc_json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return (
                    error_object("protocol", format!("request is not JSON: {e}")),
                    Control::Continue,
                )
            }
        };
        // Only appends mutate the session, so only they pay for a snapshot.
        self.pending_snapshot = request.get("append").map(|_| self.session.snapshot());
        match catch_unwind(AssertUnwindSafe(|| self.handle_request(&request, line))) {
            Ok(answer) => {
                self.pending_snapshot = None;
                answer
            }
            Err(payload) => {
                if let Some(snapshot) = self.pending_snapshot.take() {
                    self.session.restore(snapshot);
                }
                self.report.internal_faults += 1;
                let message = panic_message(payload);
                eprintln!("request handler panicked (session restored): {message}");
                (
                    error_object(
                        "internal",
                        format!("request handler panicked: {message}; session state restored"),
                    ),
                    Control::Continue,
                )
            }
        }
    }

    fn handle_request(&mut self, request: &Value, line: &str) -> (Value, Control) {
        if let Some(token) = &self.config.inject_panic {
            if !token.is_empty() && line.contains(token.as_str()) {
                panic!("injected fault: request matched --inject-panic token");
            }
        }
        if let Some(fragment) = request.get("append") {
            return (self.handle_append(fragment), Control::Continue);
        }
        match request.get("op").and_then(Value::as_str) {
            Some("stats") => {
                self.emit_gauges();
                (self.stats_response(), Control::Continue)
            }
            Some("checkpoint") => match self.save_checkpoint_and_compact() {
                Ok(true) => {
                    let target = self
                        .config
                        .checkpoint
                        .clone()
                        .expect("saved implies a path");
                    (
                        ok_object(vec![
                            ("checkpoint".to_string(), Value::from(target)),
                            ("saved".to_string(), Value::from(true)),
                        ]),
                        Control::Continue,
                    )
                }
                Ok(false) => (
                    ok_object(vec![
                        (
                            "checkpoint".to_string(),
                            Value::from("(no --checkpoint file configured)"),
                        ),
                        ("saved".to_string(), Value::from(false)),
                    ]),
                    Control::Continue,
                ),
                Err(e) => (error_object("checkpoint", e), Control::Continue),
            },
            // Save *here*, not just in the drain epilogue, so the response
            // can report honestly whether state was persisted — without
            // `--checkpoint` nothing is saved and the client is told so.
            Some("shutdown") => match self.save_checkpoint() {
                Ok(saved) => (
                    ok_object(vec![
                        ("shutdown".to_string(), Value::from(true)),
                        ("saved".to_string(), Value::from(saved)),
                    ]),
                    Control::Shutdown,
                ),
                // A failing disk must not make the daemon unstoppable: the
                // client gets the error, the daemon still drains and exits.
                Err(e) => {
                    let mut response = error_object("checkpoint", e);
                    if let Value::Object(entries) = &mut response {
                        entries.push(("shutdown".to_string(), Value::from(true)));
                    }
                    (response, Control::Shutdown)
                }
            },
            Some(other) => (
                error_object("protocol", format!("unknown op \"{other}\"")),
                Control::Continue,
            ),
            None => (
                error_object(
                    "protocol",
                    "request must be {\"append\": {...}} or {\"op\": \"...\"}".to_string(),
                ),
                Control::Continue,
            ),
        }
    }

    fn handle_append(&mut self, fragment: &Value) -> Value {
        let fragment = match crate::spec::SystemSpec::from_json(fragment) {
            Ok(spec) => spec,
            Err(e) => return error_object("spec", e.to_string()),
        };
        let started = Instant::now();
        match self.session.append(&fragment) {
            Ok(verdict) => {
                let verdict = verdict.clone();
                let elapsed_ns = started.elapsed().as_nanos() as u64;
                self.emit_trace(&verdict, elapsed_ns);
                if !verdict.is_correct() {
                    self.report.violations += 1;
                }
                // Durability before the ack: with a journal, one fsynced
                // record; without one, the full per-append checkpoint
                // rewrite the pre-journal daemon did.
                if let Some(journal) = &mut self.journal {
                    let seq = self.session.stats().appends;
                    if let Err(e) = journal.append(seq, &fragment) {
                        // No ack, so no durability promise was made. Roll
                        // the session back too: keeping the merged fragment
                        // would let every later acked append be journaled
                        // against in-memory state the journal cannot
                        // reconstruct. Rolled back, the client may simply
                        // retry.
                        if let Some(snapshot) = self.pending_snapshot.take() {
                            self.session.restore(snapshot);
                        }
                        return error_object("journal", e);
                    }
                } else if let Err(e) = self.save_checkpoint() {
                    if let Some(snapshot) = self.pending_snapshot.take() {
                        self.session.restore(snapshot);
                    }
                    return error_object("checkpoint", e);
                }
                self.verdict_response(&verdict)
            }
            Err(SpecSessionError::Session(SessionError::Interrupted(e))) => {
                self.report.interruptions += 1;
                let mut response = error_object("interrupted", e.to_string());
                if let Value::Object(entries) = &mut response {
                    entries.push(("resumable".to_string(), Value::from(true)));
                }
                response
            }
            Err(SpecSessionError::OracleDisagreement { engine_correct }) => {
                self.report.disagreements += 1;
                error_object(
                    "oracle-disagreement",
                    SpecSessionError::OracleDisagreement { engine_correct }.to_string(),
                )
            }
            Err(SpecSessionError::Session(e)) => error_object("invalid", e.to_string()),
            Err(e) => error_object("spec", e.to_string()),
        }
    }

    /// The one verdict line per append: the stats ride along so a client
    /// can watch the incremental path work (`levels_reused` growing).
    fn verdict_response(&self, verdict: &Verdict) -> Value {
        let stats = self.session.stats();
        let mut fields = vec![
            (
                "verdict".to_string(),
                Value::from(if verdict.is_correct() {
                    "comp-c"
                } else {
                    "not-comp-c"
                }),
            ),
            ("appends".to_string(), Value::from(stats.appends)),
        ];
        if let Some(sys) = self.session.system() {
            fields.push(("nodes".to_string(), Value::from(sys.node_count())));
            fields.push(("order".to_string(), Value::from(sys.order())));
        }
        fields.push((
            "levels_reused".to_string(),
            Value::from(stats.levels_reused),
        ));
        fields.push(("rows_spliced".to_string(), Value::from(stats.rows_spliced)));
        if let Verdict::Incorrect(cex) = verdict {
            fields.push(("level".to_string(), Value::from(cex.level)));
            fields.push(("phase".to_string(), Value::from(cex.phase.tag())));
            fields.push(("cycle".to_string(), Value::from(cex.cycle_names.clone())));
        }
        ok_object(fields)
    }

    fn stats_response(&self) -> Value {
        let stats = self.session.stats();
        let gauges = &self.gauges;
        ok_object(vec![
            ("appends".to_string(), Value::from(stats.appends)),
            (
                "levels_computed".to_string(),
                Value::from(stats.levels_computed),
            ),
            (
                "levels_reused".to_string(),
                Value::from(stats.levels_reused),
            ),
            (
                "rows_recomputed".to_string(),
                Value::from(stats.rows_recomputed),
            ),
            ("rows_spliced".to_string(), Value::from(stats.rows_spliced)),
            (
                "violations".to_string(),
                Value::from(self.report.violations),
            ),
            (
                "interruptions".to_string(),
                Value::from(self.report.interruptions),
            ),
            (
                "internal_faults".to_string(),
                Value::from(self.report.internal_faults),
            ),
            (
                "connections".to_string(),
                Value::from(gauges.connections.load(Ordering::SeqCst)),
            ),
            (
                "peak_connections".to_string(),
                Value::from(gauges.peak_connections.load(Ordering::SeqCst)),
            ),
            (
                "accepted".to_string(),
                Value::from(gauges.accepted.load(Ordering::SeqCst)),
            ),
            (
                "shed".to_string(),
                Value::from(gauges.shed.load(Ordering::SeqCst)),
            ),
            (
                "idle_closed".to_string(),
                Value::from(gauges.idle_closed.load(Ordering::SeqCst)),
            ),
            (
                "oversize_lines".to_string(),
                Value::from(gauges.oversize_lines.load(Ordering::SeqCst)),
            ),
            (
                "queue_depth".to_string(),
                Value::from(gauges.queue_depth.load(Ordering::SeqCst)),
            ),
            (
                "journal_records".to_string(),
                Value::from(self.journal.as_ref().map_or(0, Journal::records)),
            ),
            (
                "journal_bytes".to_string(),
                Value::from(self.journal.as_ref().map_or(0, Journal::bytes)),
            ),
        ])
    }

    /// Mirrors the serving gauges as one `serve_gauges` trace event on
    /// stdout (emitted on each `stats` op and at drain).
    fn emit_gauges(&self) {
        if !self.config.trace {
            return;
        }
        let gauges = &self.gauges;
        let event = TraceEvent::ServeGauges {
            connections: gauges.connections.load(Ordering::SeqCst),
            peak_connections: gauges.peak_connections.load(Ordering::SeqCst),
            queue_depth: gauges.queue_depth.load(Ordering::SeqCst),
            shed: gauges.shed.load(Ordering::SeqCst),
            journal_lag: self.journal.as_ref().map_or(0, Journal::records),
            internal_faults: self.report.internal_faults,
        };
        println!("{}", event_to_ndjson_line(&event, Some("serve")));
    }

    /// Mirrors one append as `compc-trace` `check_start`/`check_end`
    /// events on stdout (the socket carries the responses, so stdout is a
    /// pure event stream).
    fn emit_trace(&self, verdict: &Verdict, elapsed_ns: u64) {
        if !self.config.trace {
            return;
        }
        let Some(sys) = self.session.system() else {
            return;
        };
        let label = format!("append-{}", self.session.stats().appends);
        let start = TraceEvent::CheckStart {
            nodes: sys.node_count(),
            schedules: sys.schedule_count(),
            order: sys.order(),
        };
        let end = match verdict {
            Verdict::Correct(_) => TraceEvent::CheckEnd {
                correct: true,
                levels_completed: sys.order(),
                failed_level: None,
                failed_phase: None,
                elapsed_ns,
            },
            Verdict::Incorrect(cex) => TraceEvent::CheckEnd {
                correct: false,
                levels_completed: cex.level.saturating_sub(1),
                failed_level: Some(cex.level),
                failed_phase: Some(cex.phase.tag()),
                elapsed_ns,
            },
        };
        println!("{}", event_to_ndjson_line(&start, Some(&label)));
        println!("{}", event_to_ndjson_line(&end, Some(&label)));
    }

    /// Atomically rewrites the checkpoint file. Returns whether a file was
    /// actually written (`false` without `--checkpoint`), so callers can
    /// report a save truthfully instead of implying one happened.
    ///
    /// Durability order matters: the temp file is fsynced *before* the
    /// rename (otherwise a crash can leave the rename durable but the
    /// contents not — an empty or truncated "checkpoint"), and the parent
    /// directory is fsynced after so the rename itself survives a crash.
    /// A leftover `.tmp` from a kill mid-write is harmless: restore only
    /// ever reads the real path, and the next save overwrites the temp.
    fn save_checkpoint(&self) -> Result<bool, String> {
        use std::io::Write as _;
        let Some(path) = &self.config.checkpoint else {
            return Ok(false);
        };
        let tmp = format!("{path}.tmp");
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create checkpoint {tmp}: {e}"))?;
        file.write_all(self.session.checkpoint_json().as_bytes())
            .map_err(|e| format!("cannot write checkpoint {tmp}: {e}"))?;
        file.sync_all()
            .map_err(|e| format!("cannot sync checkpoint {tmp}: {e}"))?;
        drop(file);
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("cannot replace checkpoint {path}: {e}"))?;
        // Make the rename durable too. Directory fsync is best-effort: some
        // filesystems refuse to open directories for writing, and a crash
        // here only loses the newest checkpoint, never corrupts one.
        let dir = std::path::Path::new(path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(|| std::path::Path::new("."));
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(true)
    }

    /// Compaction: checkpoint first, journal truncation second. A crash
    /// between the two only leaves journal records whose appends the new
    /// checkpoint already covers — replay skips them by sequence number.
    pub fn save_checkpoint_and_compact(&mut self) -> Result<bool, String> {
        let saved = self.save_checkpoint()?;
        if let Some(journal) = &mut self.journal {
            if saved {
                journal.truncate()?;
            }
        }
        Ok(saved)
    }
}
