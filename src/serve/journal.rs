//! The write-ahead append journal behind `--journal`.
//!
//! One NDJSON record per accepted append, `{"seq": N, "append": {...}}`,
//! fsynced (`sync_data`) before the verdict is acked — that ordering is
//! the whole durability contract. At startup [`replay`] applies the
//! journal suffix past the restored checkpoint (records whose `seq` the
//! checkpoint already covers are skipped) and repairs the file tail: a
//! torn (unparseable, never-acked) trailing record from a crash mid-write
//! is truncated away, and a whole-but-unterminated one gets its missing
//! newline — either way the next fsynced append starts on a fresh line
//! and can never fuse with leftover bytes into one unparseable record.
//! Compaction rewrites the checkpoint first and truncates the journal
//! second, so a crash between the two only leaves records the next
//! replay skips.

use crate::session::SpecSession;
use crate::spec::SystemSpec;
use compc_json::Value;
use std::io::Write;

/// An open journal file in append mode, tracking its own size so the
/// `journal_lag` gauge (records past the checkpoint) is free to read.
pub(crate) struct Journal {
    file: std::fs::File,
    path: String,
    records: u64,
    bytes: u64,
}

impl Journal {
    pub fn open(path: &str) -> Result<Journal, String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {path}: {e}"))?;
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(Journal {
            file,
            path: path.to_string(),
            records: 0,
            bytes,
        })
    }

    /// Seeds the record count from a replay (the open file may already
    /// hold records; only [`replay`] knows how many were whole).
    pub fn assume_records(&mut self, records: u64) {
        self.records = records;
    }

    /// Records currently in the journal (the checkpoint lag).
    pub fn records(&self) -> u64 {
        self.records
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends one record and fsyncs it. Must complete before the
    /// append's verdict is acked; an error here fails the append (the
    /// dispatcher rolls the session back to its pre-request snapshot, so
    /// the client may simply retry).
    pub fn append(&mut self, seq: u64, fragment: &SystemSpec) -> Result<(), String> {
        let record = Value::Object(vec![
            ("seq".into(), Value::from(seq)),
            ("append".into(), fragment.to_json()),
        ]);
        let mut line = record.to_compact();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|_| self.file.sync_data())
            .map_err(|e| format!("cannot journal append to {}: {e}", self.path))?;
        self.records += 1;
        self.bytes += line.len() as u64;
        Ok(())
    }

    /// Empties the journal after a successful checkpoint rewrite
    /// (compaction step two).
    pub fn truncate(&mut self) -> Result<(), String> {
        self.file
            .set_len(0)
            .and_then(|_| self.file.sync_data())
            .map_err(|e| format!("cannot truncate journal {}: {e}", self.path))?;
        self.records = 0;
        self.bytes = 0;
        Ok(())
    }
}

/// What a startup replay found and did.
pub(crate) struct ReplayReport {
    /// Records applied (their `seq` was past the checkpoint).
    pub applied: u64,
    /// Whole records skipped because the checkpoint already covered them.
    pub skipped: u64,
    /// A torn (half-written, never-acked) trailing record was dropped
    /// and truncated out of the file.
    pub torn: bool,
}

/// Replays the journal at `path` into `session`, skipping records the
/// restored checkpoint already covers, and repairs an unterminated tail
/// in place (truncating a torn record, newline-terminating a whole one)
/// so the next append starts on a fresh line. Corruption anywhere but a
/// torn tail is a hard error: it means acked state may be unrecoverable,
/// and silently continuing would break the durability contract.
pub(crate) fn replay(path: &str, session: &mut SpecSession) -> Result<ReplayReport, String> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReplayReport {
                applied: 0,
                skipped: 0,
                torn: false,
            })
        }
        Err(e) => return Err(format!("cannot read journal {path}: {e}")),
    };
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    // A trailing newline yields one empty tail element; no trailing
    // newline means the last element is a torn candidate.
    let torn_candidate = match lines.last() {
        Some(&[]) => {
            lines.pop();
            None
        }
        Some(_) => lines.pop(),
        None => None,
    };
    let mut report = ReplayReport {
        applied: 0,
        skipped: 0,
        torn: false,
    };
    let total = lines.len();
    for (index, line) in lines.into_iter().enumerate() {
        let (seq, fragment) = parse_record(line)
            .map_err(|e| format!("journal {path} record {} is corrupt: {e}", index + 1))?;
        apply_record(session, seq, &fragment, &mut report)
            .map_err(|e| format!("journal {path} record {} failed to replay: {e}", index + 1))?;
    }
    if let Some(tail) = torn_candidate {
        match parse_record(tail) {
            Ok((seq, fragment)) => {
                apply_record(session, seq, &fragment, &mut report).map_err(|e| {
                    format!("journal {path} record {} failed to replay: {e}", total + 1)
                })?;
                // The record is whole, only its newline is missing: add
                // it, or the next append would fuse with this record into
                // one unparseable line the next restart hard-errors on.
                terminate_tail(path)?;
            }
            // Unparseable and unterminated: the classic torn write. The
            // record's fsync never completed, so its append was never
            // acked and dropping it loses nothing the contract promised —
            // but its bytes must go too, or the next append would fuse
            // with them into one poisoned line.
            Err(_) => {
                report.torn = true;
                let clean_bytes = bytes
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(0, |i| i as u64 + 1);
                truncate_tail(path, clean_bytes)?;
            }
        }
    }
    Ok(report)
}

/// Drops everything past the last whole newline-terminated record
/// (replay tail repair, durable before any new append lands).
fn truncate_tail(path: &str, clean_bytes: u64) -> Result<(), String> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("cannot open journal {path} to drop its torn tail: {e}"))?;
    file.set_len(clean_bytes)
        .and_then(|_| file.sync_data())
        .map_err(|e| format!("cannot drop the torn tail of journal {path}: {e}"))
}

/// Writes the newline a whole-but-unterminated final record is missing
/// (replay tail repair, durable before any new append lands).
fn terminate_tail(path: &str) -> Result<(), String> {
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open journal {path} to terminate its tail: {e}"))?;
    file.write_all(b"\n")
        .and_then(|_| file.sync_data())
        .map_err(|e| format!("cannot terminate the tail of journal {path}: {e}"))
}

fn parse_record(line: &[u8]) -> Result<(u64, SystemSpec), String> {
    let text = std::str::from_utf8(line).map_err(|e| format!("not UTF-8: {e}"))?;
    let doc = compc_json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let seq = doc
        .get("seq")
        .and_then(Value::as_u64)
        .ok_or("missing integer \"seq\" field")?;
    let append = doc.get("append").ok_or("missing \"append\" field")?;
    let fragment = SystemSpec::from_json(append).map_err(|e| format!("bad fragment: {e}"))?;
    Ok((seq, fragment))
}

fn apply_record(
    session: &mut SpecSession,
    seq: u64,
    fragment: &SystemSpec,
    report: &mut ReplayReport,
) -> Result<(), String> {
    if seq <= session.stats().appends {
        report.skipped += 1;
        return Ok(());
    }
    session.append(fragment).map_err(|e| e.to_string())?;
    report.applied += 1;
    Ok(())
}
