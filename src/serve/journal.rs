//! The write-ahead append journal behind `--journal`.
//!
//! One NDJSON record per accepted append — `{"seq": N, "append": {...}}`
//! for the `"default"` session (byte-identical to the pre-multi-session
//! format), `{"session": "name", "seq": N, "append": {...}}` for named
//! sessions. Records are written in **commit batches**: a dispatch shard
//! stages up to `--commit-batch` applied appends, serializes them into one
//! reusable scratch buffer, writes the whole batch with a single
//! `write_all`, and issues a single `sync_data` — only then are the
//! batch's verdicts acked. That ordering (ack strictly after the fsync
//! that covers the record) is the whole durability contract; batching
//! amortizes the fsync without weakening it, because *no* member of a
//! batch is acked before the one fsync that covers *all* of them.
//!
//! At startup [`replay`] applies the journal suffix past the restored
//! checkpoint, demultiplexing records into their named sessions (records
//! whose `seq` a session's checkpoint already covers are skipped) and
//! repairs the file tail: a torn (unparseable, never-acked) trailing
//! record from a crash mid-write is truncated away, and a whole-but-
//! unterminated one gets its missing newline — either way the next
//! fsynced batch starts on a fresh line and can never fuse with leftover
//! bytes into one unparseable record. A crash mid-batch-write can only
//! tear the *tail*: the batch is one contiguous `write_all`, so whatever
//! the kernel persisted without the fsync is a prefix of whole records
//! plus at most one torn final record — whole-but-unfsynced prefix
//! records may replay even though their acks never left (idempotent
//! merges make the client's re-send harmless), and the torn record is
//! dropped. Compaction rewrites the checkpoint first and truncates the
//! journal second, so a crash between the two only leaves records the
//! next replay skips.

use crate::session::{SpecSession, DEFAULT_SESSION};
use crate::spec::SystemSpec;
use compc_core::CheckOptions;
use compc_json::Value;
use std::collections::HashMap;
use std::io::Write;

/// An open journal file in append mode, tracking its own size so the
/// `journal_lag` gauge (records past the checkpoint) is free to read.
pub(crate) struct Journal {
    file: std::fs::File,
    path: String,
    records: u64,
    bytes: u64,
    /// Reusable serialization buffer: one allocation serves every batch
    /// instead of one fresh `String` per record.
    scratch: String,
}

/// One applied append staged for a commit batch:
/// `(session, seq, fragment)`.
pub(crate) type BatchRecord<'a> = (&'a str, u64, &'a SystemSpec);

impl Journal {
    pub fn open(path: &str) -> Result<Journal, String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {path}: {e}"))?;
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(Journal {
            file,
            path: path.to_string(),
            records: 0,
            bytes,
            scratch: String::new(),
        })
    }

    /// Seeds the record count from a replay (the open file may already
    /// hold records; only [`replay`] knows how many were whole).
    pub fn assume_records(&mut self, records: u64) {
        self.records = records;
    }

    /// Records currently in the journal (the checkpoint lag).
    pub fn records(&self) -> u64 {
        self.records
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends a commit batch as one contiguous write and one fsync. Must
    /// complete before *any* member's verdict is acked; an error fails the
    /// whole batch (the dispatcher rolls every touched session back to its
    /// pre-batch snapshot, so the clients may simply retry).
    pub fn append_batch(&mut self, records: &[BatchRecord<'_>]) -> Result<(), String> {
        if records.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        for (session, seq, fragment) in records {
            let mut entries = Vec::with_capacity(3);
            // The default session omits its name, so a daemon that never
            // saw a named session writes pre-multi-session records,
            // byte for byte.
            if *session != DEFAULT_SESSION {
                entries.push(("session".to_string(), Value::from(*session)));
            }
            entries.push(("seq".to_string(), Value::from(*seq)));
            entries.push(("append".to_string(), fragment.to_json()));
            Value::Object(entries).write_compact_into(&mut self.scratch);
            self.scratch.push('\n');
        }
        self.file
            .write_all(self.scratch.as_bytes())
            .and_then(|_| self.file.sync_data())
            .map_err(|e| format!("cannot journal batch to {}: {e}", self.path))?;
        self.records += records.len() as u64;
        self.bytes += self.scratch.len() as u64;
        Ok(())
    }

    /// Empties the journal after a successful checkpoint rewrite
    /// (compaction step two).
    pub fn truncate(&mut self) -> Result<(), String> {
        self.file
            .set_len(0)
            .and_then(|_| self.file.sync_data())
            .map_err(|e| format!("cannot truncate journal {}: {e}", self.path))?;
        self.records = 0;
        self.bytes = 0;
        Ok(())
    }
}

/// What a startup replay found and did.
pub(crate) struct ReplayReport {
    /// Records applied (their `seq` was past their session's checkpoint).
    pub applied: u64,
    /// Whole records skipped because a checkpoint already covered them.
    pub skipped: u64,
    /// A torn (half-written, never-acked) trailing record was dropped
    /// and truncated out of the file.
    pub torn: bool,
}

/// Replays the journal at `path` into the named `sessions`, creating
/// sessions (with `options`) the first time a record names them, skipping
/// records each session's restored checkpoint already covers, and repairs
/// an unterminated tail in place (truncating a torn record, newline-
/// terminating a whole one) so the next batch starts on a fresh line.
/// Corruption anywhere but a torn tail is a hard error: it means acked
/// state may be unrecoverable, and silently continuing would break the
/// durability contract.
pub(crate) fn replay(
    path: &str,
    sessions: &mut HashMap<String, SpecSession>,
    options: CheckOptions,
) -> Result<ReplayReport, String> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReplayReport {
                applied: 0,
                skipped: 0,
                torn: false,
            })
        }
        Err(e) => return Err(format!("cannot read journal {path}: {e}")),
    };
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    // A trailing newline yields one empty tail element; no trailing
    // newline means the last element is a torn candidate.
    let torn_candidate = match lines.last() {
        Some(&[]) => {
            lines.pop();
            None
        }
        Some(_) => lines.pop(),
        None => None,
    };
    let mut report = ReplayReport {
        applied: 0,
        skipped: 0,
        torn: false,
    };
    let total = lines.len();
    for (index, line) in lines.into_iter().enumerate() {
        let (session, seq, fragment) = parse_record(line)
            .map_err(|e| format!("journal {path} record {} is corrupt: {e}", index + 1))?;
        apply_record(sessions, options, &session, seq, &fragment, &mut report)
            .map_err(|e| format!("journal {path} record {} failed to replay: {e}", index + 1))?;
    }
    if let Some(tail) = torn_candidate {
        match parse_record(tail) {
            Ok((session, seq, fragment)) => {
                apply_record(sessions, options, &session, seq, &fragment, &mut report).map_err(
                    |e| format!("journal {path} record {} failed to replay: {e}", total + 1),
                )?;
                // The record is whole, only its newline is missing: add
                // it, or the next batch would fuse with this record into
                // one unparseable line the next restart hard-errors on.
                terminate_tail(path)?;
            }
            // Unparseable and unterminated: the classic torn write. The
            // record's fsync never completed, so its append was never
            // acked and dropping it loses nothing the contract promised —
            // but its bytes must go too, or the next batch would fuse
            // with them into one poisoned line.
            Err(_) => {
                report.torn = true;
                let clean_bytes = bytes
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(0, |i| i as u64 + 1);
                truncate_tail(path, clean_bytes)?;
            }
        }
    }
    Ok(report)
}

/// Drops everything past the last whole newline-terminated record
/// (replay tail repair, durable before any new append lands).
fn truncate_tail(path: &str, clean_bytes: u64) -> Result<(), String> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("cannot open journal {path} to drop its torn tail: {e}"))?;
    file.set_len(clean_bytes)
        .and_then(|_| file.sync_data())
        .map_err(|e| format!("cannot drop the torn tail of journal {path}: {e}"))
}

/// Writes the newline a whole-but-unterminated final record is missing
/// (replay tail repair, durable before any new append lands).
fn terminate_tail(path: &str) -> Result<(), String> {
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open journal {path} to terminate its tail: {e}"))?;
    file.write_all(b"\n")
        .and_then(|_| file.sync_data())
        .map_err(|e| format!("cannot terminate the tail of journal {path}: {e}"))
}

fn parse_record(line: &[u8]) -> Result<(String, u64, SystemSpec), String> {
    let text = std::str::from_utf8(line).map_err(|e| format!("not UTF-8: {e}"))?;
    let doc = compc_json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let session = match doc.get("session") {
        None => DEFAULT_SESSION.to_string(),
        Some(v) => v
            .as_str()
            .filter(|s| !s.is_empty())
            .ok_or("\"session\" must be a non-empty string")?
            .to_string(),
    };
    let seq = doc
        .get("seq")
        .and_then(Value::as_u64)
        .ok_or("missing integer \"seq\" field")?;
    let append = doc.get("append").ok_or("missing \"append\" field")?;
    let fragment = SystemSpec::from_json(append).map_err(|e| format!("bad fragment: {e}"))?;
    Ok((session, seq, fragment))
}

fn apply_record(
    sessions: &mut HashMap<String, SpecSession>,
    options: CheckOptions,
    session: &str,
    seq: u64,
    fragment: &SystemSpec,
    report: &mut ReplayReport,
) -> Result<(), String> {
    let entry = sessions
        .entry(session.to_string())
        .or_insert_with(|| SpecSession::with_options(options));
    if seq <= entry.stats().appends {
        report.skipped += 1;
        return Ok(());
    }
    entry.append(fragment).map_err(|e| e.to_string())?;
    report.applied += 1;
    Ok(())
}

/// Atomically rewrites the checkpoint file at `path` with `doc`.
///
/// Durability order matters: the temp file is fsynced *before* the rename
/// (otherwise a crash can leave the rename durable but the contents not —
/// an empty or truncated "checkpoint"), and the parent directory is
/// fsynced after so the rename itself survives a crash. A leftover `.tmp`
/// from a kill mid-write is harmless: restore only ever reads the real
/// path, and the next save overwrites the temp.
pub(crate) fn write_checkpoint_file(path: &str, doc: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    let mut file =
        std::fs::File::create(&tmp).map_err(|e| format!("cannot create checkpoint {tmp}: {e}"))?;
    file.write_all(doc.as_bytes())
        .map_err(|e| format!("cannot write checkpoint {tmp}: {e}"))?;
    file.sync_all()
        .map_err(|e| format!("cannot sync checkpoint {tmp}: {e}"))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot replace checkpoint {path}: {e}"))?;
    // Make the rename durable too. Directory fsync is best-effort: some
    // filesystems refuse to open directories for writing, and a crash
    // here only loses the newest checkpoint, never corrupts one.
    let dir = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}
