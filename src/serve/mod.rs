//! The `compc-serve` serving core: a production-shaped concurrent daemon
//! around [`crate::session::SpecSession`].
//!
//! # Architecture (DESIGN.md §8)
//!
//! ```text
//!  clients ──► accept thread ──► per-connection reader threads
//!                 │ (sheds over --max-conns          │ lines
//!                 │  with an "overloaded" error)     ▼
//!                 │                     bounded mpsc request queue
//!                 │                                  │ FIFO per connection
//!                 ▼                                  ▼
//!   per-connection writer threads ◄─── single dispatch thread
//!         (one response line            (owns the SpecSession; catch_unwind
//!          per request line)             per request; journals before ack)
//! ```
//!
//! One **dispatch thread** owns all checker state, so the checking path
//! needs no locks and per-connection request order is preserved end to
//! end (readers feed a single mpsc channel; `std::sync::mpsc` is FIFO per
//! sender, and responses are routed back through per-connection writer
//! channels). Concurrency lives at the edges: the accept loop and the
//! per-connection reader/writer threads, so one idle or slow client can
//! never head-of-line-block another.
//!
//! # Durability contract
//!
//! **An acked verdict survives any single crash.** With `--journal FILE`
//! every accepted append is fsync-appended to the journal as one NDJSON
//! record *before* its verdict is written to the socket; startup replays
//! the checkpoint (if any) and then the journal suffix past it, and
//! `checkpoint` compacts (fsync-before-rename snapshot, then journal
//! truncation — in that order, so a crash between the two only leaves
//! already-applied records that replay skips). A torn trailing journal
//! record from a crash mid-write is truncated out of the file at replay
//! (its append was never acked), so the next fsynced append can never
//! fuse with leftover tail bytes. `--journal` requires `--checkpoint`:
//! compaction may only truncate records a checkpoint covers, so without
//! one the journal would grow without bound.
//!
//! # Overload and drain
//!
//! Connections beyond `--max-conns` are shed immediately with a
//! structured `overloaded` error instead of queueing unboundedly; the
//! request queue itself is bounded, which back-pressures pipelining
//! clients at the socket. SIGTERM/SIGINT or a `shutdown` op stops
//! accepting, drains queued requests under `--drain-timeout-ms`, saves,
//! and exits.

pub mod client;
mod conn;
mod dispatch;
mod journal;

pub use dispatch::ServeReport;

use crate::session::SpecSession;
use compc_core::{Backend, CheckOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Requests queued for the dispatch thread before readers block. Bounds
/// daemon memory under a client that pipelines without reading responses.
const REQUEST_QUEUE_CAP: usize = 1024;

/// Everything the daemon's behavior is configured by (the `compc-serve`
/// binary maps its flags onto this).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket path to listen on (mutually exclusive with `listen`).
    pub socket: Option<String>,
    /// TCP address to listen on (mutually exclusive with `socket`).
    pub listen: Option<String>,
    /// Checkpoint file: restored at startup, rewritten on compaction,
    /// drain, and (without a journal) after every successful append.
    pub checkpoint: Option<String>,
    /// Write-ahead append journal: fsynced before each ack, replayed past
    /// the checkpoint at startup, truncated on compaction.
    pub journal: Option<String>,
    /// Within-level parallelism per append (0 = one per core).
    pub jobs: usize,
    /// Transitive-closure backend.
    pub backend: Backend,
    /// Per-append budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Cross-check verdicts against the brute-force oracle.
    pub oracle: bool,
    /// Mirror appends and serving gauges as `compc-trace` NDJSON on stdout.
    pub trace: bool,
    /// Exit after the first client disconnects.
    pub once: bool,
    /// Connections beyond this are shed with an `overloaded` error.
    pub max_conns: usize,
    /// Idle/read timeout per connection in milliseconds (0 = never).
    pub idle_timeout_ms: u64,
    /// Request lines longer than this are answered with an `oversize`
    /// error and discarded.
    pub max_line_bytes: usize,
    /// How long a drain keeps serving queued requests before abandoning
    /// them.
    pub drain_timeout_ms: u64,
    /// Testing aid: any request line containing this token panics inside
    /// the dispatch thread, exercising the panic-isolation path.
    pub inject_panic: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: None,
            listen: None,
            checkpoint: None,
            journal: None,
            jobs: 1,
            backend: Backend::default(),
            deadline_ms: None,
            oracle: false,
            trace: false,
            once: false,
            max_conns: 64,
            idle_timeout_ms: 30_000,
            max_line_bytes: 1 << 20,
            drain_timeout_ms: 5_000,
            inject_panic: None,
        }
    }
}

impl ServeConfig {
    /// The unified [`CheckOptions`] this configuration checks with.
    pub fn check_options(&self) -> CheckOptions {
        let mut options = CheckOptions::new()
            .jobs(self.jobs)
            .backend(self.backend)
            .oracle(self.oracle);
        if let Some(ms) = self.deadline_ms {
            options = options.deadline(Duration::from_millis(ms));
        }
        options
    }
}

/// Serving-layer gauges shared between the accept loop, the reader
/// threads, and the dispatch thread; exported through the `stats` op and
/// `--trace` `serve_gauges` events.
#[derive(Default)]
pub(crate) struct Gauges {
    /// Connections currently open.
    pub connections: AtomicU64,
    /// Highest concurrent connection count seen.
    pub peak_connections: AtomicU64,
    /// Connections accepted (shed ones excluded).
    pub accepted: AtomicU64,
    /// Connections shed with an `overloaded` error.
    pub shed: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_closed: AtomicU64,
    /// Request lines rejected for exceeding `--max-line-bytes`.
    pub oversize_lines: AtomicU64,
    /// Requests currently queued for (or in flight to) the dispatch thread.
    pub queue_depth: AtomicU64,
}

/// Set by the SIGTERM/SIGINT handlers; polled by the dispatch loop.
static TERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term_signal(_sig: i32) {
    TERM_FLAG.store(true, Ordering::SeqCst);
}

/// Installs graceful-drain handlers for SIGTERM and SIGINT. Only the
/// async-signal-safe atomic store happens in the handler; the dispatch
/// loop notices the flag at its next poll tick.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term_signal);
        signal(SIGINT, on_term_signal);
    }
}

/// Whether a termination signal arrived since the last call (the flag is
/// consumed, so a drain is initiated exactly once per signal).
pub(crate) fn term_requested() -> bool {
    TERM_FLAG.swap(false, Ordering::SeqCst)
}

/// Runs the daemon to completion: restores state, binds, serves, drains.
///
/// Returns the outcome counters the exit code is computed from, or an
/// error string for fatal startup/save failures (exit code 2 territory).
pub fn serve(config: ServeConfig) -> Result<ServeReport, String> {
    if config.journal.is_some() && config.checkpoint.is_none() {
        return Err(
            "--journal requires --checkpoint: compaction can only truncate journal \
             records a checkpoint covers, so without one the journal grows without bound"
                .to_string(),
        );
    }
    let deadline = config.deadline_ms.map(Duration::from_millis);
    // Restore with the deadline stripped: replaying a checkpoint or a
    // journal suffix is catch-up work, not a client request, and must not
    // be interrupted by --deadline-ms.
    let mut restore_options = config.check_options();
    restore_options.deadline = None;

    let mut session = match &config.checkpoint {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let session = SpecSession::from_checkpoint(&text, restore_options)
                    .map_err(|e| format!("cannot restore checkpoint {path}: {e}"))?;
                eprintln!(
                    "restored checkpoint {path}: {} node(s), {} schedule(s)",
                    session.spec().nodes.len(),
                    session.spec().schedules.len()
                );
                session
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                SpecSession::with_options(restore_options)
            }
            Err(e) => return Err(format!("cannot read checkpoint {path}: {e}")),
        },
        None => SpecSession::with_options(restore_options),
    };

    let mut journal = None;
    let mut compact_on_start = false;
    if let Some(path) = &config.journal {
        let report = journal::replay(path, &mut session)?;
        if report.applied > 0 || report.torn {
            eprintln!(
                "replayed {} journaled append(s) past the checkpoint ({} already covered{})",
                report.applied,
                report.skipped,
                if report.torn {
                    "; dropped one torn, never-acked trailing record"
                } else {
                    ""
                }
            );
        }
        let mut open = journal::Journal::open(path)?;
        open.assume_records(report.applied + report.skipped);
        journal = Some(open);
        // Applied records mean the checkpoint is stale by the replayed
        // suffix; a torn tail means the last run died mid-write. Either
        // way, compact so the journal stays short (and fully covered)
        // across repeated crash/restart cycles.
        compact_on_start = report.applied > 0 || report.torn;
    }
    session.set_deadline(deadline);

    let listener = if let Some(path) = &config.socket {
        conn::Listener::bind_unix(path)?
    } else if let Some(addr) = &config.listen {
        conn::Listener::bind_tcp(addr)?
    } else {
        return Err("one of --socket or --listen is required".to_string());
    };
    eprintln!("listening on {}", listener.local_display());

    install_signal_handlers();

    let gauges = Arc::new(Gauges::default());
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::sync_channel(REQUEST_QUEUE_CAP);

    let limits = conn::ConnLimits {
        max_conns: config.max_conns.max(1),
        idle_timeout: match config.idle_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        max_line_bytes: config.max_line_bytes.max(64),
    };
    let mut daemon = dispatch::Daemon::new(session, journal, config, Arc::clone(&gauges));
    if compact_on_start {
        if let Err(e) = daemon.save_checkpoint_and_compact() {
            eprintln!("startup compaction failed (journal kept): {e}");
        }
    }

    let accept = {
        let gauges = Arc::clone(&gauges);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("compc-serve-accept".to_string())
            .spawn(move || conn::accept_loop(listener, tx, gauges, stop, limits))
            .map_err(|e| format!("cannot spawn accept thread: {e}"))?
    };

    let outcome = dispatch::dispatch_loop(rx, &mut daemon, &stop);
    stop.store(true, Ordering::SeqCst);
    let _ = accept.join();
    outcome?;
    Ok(daemon.report())
}
