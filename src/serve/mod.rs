//! The `compc-serve` serving core: a production-shaped concurrent daemon
//! around [`crate::session::SpecSession`].
//!
//! # Architecture (DESIGN.md §8)
//!
//! ```text
//!  clients ──► accept thread ──► per-connection reader threads
//!                 │ (sheds over --max-conns      │ parse + classify,
//!                 │  with an "overloaded" error) │ route by session hash
//!                 │                              ▼
//!                 │              bounded per-shard request queues
//!                 │                              │ FIFO per session
//!                 ▼                              ▼
//!   per-connection writer threads ◄── N dispatch shard threads
//!         (one response line          (each the single owner of its
//!          per request line)           sessions; catch_unwind per request;
//!                                      journal group commit before ack)
//!                                              ▲
//!                              control thread ─┘ freeze/resume for
//!                              (checkpoint, shutdown, drain)
//! ```
//!
//! Each **dispatch shard** owns a disjoint partition of the named
//! sessions (requests are routed by a stable hash of their session name,
//! [`shard_of`]), so the checking path needs no locks and per-session
//! request order is preserved end to end: readers assign shards in line
//! order, `std::sync::mpsc` is FIFO per sender, and responses are routed
//! back through per-connection writer channels. With the default
//! `--dispatch-shards 1` this degenerates to exactly the single dispatch
//! thread of earlier releases. Concurrency lives at the edges — the
//! accept loop, the reader/writer threads, and the shards — so one idle
//! or slow client (or one hot session) can never head-of-line-block
//! another.
//!
//! # Durability contract
//!
//! **An acked verdict survives any single crash.** With `--journal FILE`
//! every accepted append becomes one NDJSON journal record; records are
//! written in **commit batches** (up to `--commit-batch` contiguous
//! queued appends per shard) with one `write_all` and one fsync covering
//! the whole batch, and *no* member's verdict is written to the socket
//! before that fsync returns. Batching amortizes the fsync without
//! weakening the contract: an ack still strictly follows the fsync that
//! covers its record. Startup replays the checkpoint (if any) and then
//! the journal suffix past it, demultiplexing records into their named
//! sessions; `checkpoint` compacts (fsync-before-rename snapshot, then
//! journal truncation — in that order, so a crash between the two only
//! leaves already-applied records that replay skips). A torn trailing
//! journal record from a crash mid-write is truncated out of the file at
//! replay (its batch was never acked), and whole-but-unfsynced records a
//! crash may leave behind replay harmlessly (their clients were never
//! acked either; idempotent merges absorb the re-send). `--journal`
//! requires `--checkpoint`: compaction may only truncate records a
//! checkpoint covers, so without one the journal would grow without
//! bound.
//!
//! # Overload and drain
//!
//! Connections beyond `--max-conns` are shed immediately with a
//! structured `overloaded` error instead of queueing unboundedly; the
//! per-shard request queues are bounded, which back-pressures pipelining
//! clients at the socket. SIGTERM/SIGINT or a `shutdown` op stops
//! accepting, drains queued requests under `--drain-timeout-ms`, saves,
//! and exits.

pub mod client;
mod conn;
mod dispatch;
mod journal;

pub use dispatch::ServeReport;

use crate::session::{restore_sessions, sessions_checkpoint_json, SpecSession, DEFAULT_SESSION};
use compc_core::{Backend, CheckOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Requests queued across all shards before readers block. Bounds daemon
/// memory under a client that pipelines without reading responses; split
/// evenly across `--dispatch-shards` (with a floor, so many shards never
/// starve a queue down to nothing).
const REQUEST_QUEUE_CAP: usize = 1024;

/// Everything the daemon's behavior is configured by (the `compc-serve`
/// binary maps its flags onto this).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket path to listen on (mutually exclusive with `listen`).
    pub socket: Option<String>,
    /// TCP address to listen on (mutually exclusive with `socket`).
    pub listen: Option<String>,
    /// Checkpoint file: restored at startup, rewritten on compaction,
    /// drain, and (without a journal) after every successful commit batch.
    pub checkpoint: Option<String>,
    /// Write-ahead append journal: fsynced once per commit batch before
    /// any of the batch's acks, replayed past the checkpoint at startup,
    /// truncated on compaction.
    pub journal: Option<String>,
    /// Within-level parallelism per append (0 = one per core).
    pub jobs: usize,
    /// Transitive-closure backend.
    pub backend: Backend,
    /// Per-append budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Cross-check verdicts against the brute-force oracle.
    pub oracle: bool,
    /// Mirror appends and serving gauges as `compc-trace` NDJSON on stdout.
    pub trace: bool,
    /// Exit after the first client disconnects.
    pub once: bool,
    /// Connections beyond this are shed with an `overloaded` error.
    pub max_conns: usize,
    /// Idle/read timeout per connection in milliseconds (0 = never).
    pub idle_timeout_ms: u64,
    /// Request lines longer than this are answered with an `oversize`
    /// error and discarded.
    pub max_line_bytes: usize,
    /// How long a drain keeps serving queued requests before abandoning
    /// them.
    pub drain_timeout_ms: u64,
    /// Most contiguous queued appends one journal fsync may cover (group
    /// commit; 1 = fsync per append, the pre-batching behavior).
    pub commit_batch: usize,
    /// Dispatch shard threads; sessions are routed to shards by a stable
    /// hash of their name (1 = the classic single dispatch thread).
    pub dispatch_shards: usize,
    /// Testing aid: any request line containing this token panics inside
    /// the dispatch shard, exercising the panic-isolation path.
    pub inject_panic: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: None,
            listen: None,
            checkpoint: None,
            journal: None,
            jobs: 1,
            backend: Backend::default(),
            deadline_ms: None,
            oracle: false,
            trace: false,
            once: false,
            max_conns: 64,
            idle_timeout_ms: 30_000,
            max_line_bytes: 1 << 20,
            drain_timeout_ms: 5_000,
            commit_batch: 64,
            dispatch_shards: 1,
            inject_panic: None,
        }
    }
}

impl ServeConfig {
    /// The unified [`CheckOptions`] this configuration checks with.
    pub fn check_options(&self) -> CheckOptions {
        let mut options = CheckOptions::new()
            .jobs(self.jobs)
            .backend(self.backend)
            .oracle(self.oracle);
        if let Some(ms) = self.deadline_ms {
            options = options.deadline(Duration::from_millis(ms));
        }
        options
    }
}

/// The shard that owns `session`: FNV-1a over the name, reduced mod the
/// shard count. Stable across runs and platforms — the same session
/// always lands on the same shard, which is what makes single-owner
/// (lock-free) session state sound.
pub(crate) fn shard_of(session: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in session.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// Serving-layer gauges shared between the accept loop, the reader
/// threads, the dispatch shards, and the control thread; exported through
/// the `stats` op and `--trace` `serve_gauges` events.
#[derive(Default)]
pub(crate) struct Gauges {
    /// Connections currently open.
    pub connections: AtomicU64,
    /// Highest concurrent connection count seen.
    pub peak_connections: AtomicU64,
    /// Connections accepted (shed ones excluded).
    pub accepted: AtomicU64,
    /// Connections shed with an `overloaded` error.
    pub shed: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_closed: AtomicU64,
    /// Request lines rejected for exceeding `--max-line-bytes`.
    pub oversize_lines: AtomicU64,
    /// Requests currently queued for (or in flight to) any dispatch shard.
    pub queue_depth: AtomicU64,
    /// `queue_depth`, split per shard (also the drain-quiescence signal).
    pub shard_depths: Vec<AtomicU64>,
    /// Named sessions currently live (the restored ones included).
    pub sessions: AtomicU64,
    /// Acked appends over the daemon's lifetime (restored state included).
    pub appends: AtomicU64,
    /// Acked appends whose verdict was a Comp-C violation.
    pub violations: AtomicU64,
    /// Appends interrupted by the per-append deadline.
    pub interruptions: AtomicU64,
    /// Engine/oracle disagreements under `--oracle`.
    pub disagreements: AtomicU64,
    /// Requests whose handler panicked (isolated, answered `internal`).
    pub internal_faults: AtomicU64,
    /// Durability fsyncs issued (one per flushed commit batch).
    pub fsyncs: AtomicU64,
    /// Fsyncs group commit avoided (batch size minus one, per batch).
    pub fsyncs_saved: AtomicU64,
    /// Largest commit batch flushed so far.
    pub batch_max: AtomicU64,
    /// Log2 histogram of flushed commit-batch sizes (bucket k counts
    /// batches of 2^k ..= 2^(k+1)-1 records; the last bucket absorbs the
    /// rest).
    pub batch_buckets: [AtomicU64; 16],
}

impl Gauges {
    fn new(shards: usize) -> Gauges {
        Gauges {
            shard_depths: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            ..Gauges::default()
        }
    }
}

/// Set by the SIGTERM/SIGINT handlers; polled by the control loop.
static TERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term_signal(_sig: i32) {
    TERM_FLAG.store(true, Ordering::SeqCst);
}

/// Installs graceful-drain handlers for SIGTERM and SIGINT. Only the
/// async-signal-safe atomic store happens in the handler; the control
/// loop notices the flag at its next poll tick.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term_signal);
        signal(SIGINT, on_term_signal);
    }
}

/// Whether a termination signal arrived since the last call (the flag is
/// consumed, so a drain is initiated exactly once per signal).
pub(crate) fn term_requested() -> bool {
    TERM_FLAG.swap(false, Ordering::SeqCst)
}

/// Runs the daemon to completion: restores state, binds, serves, drains.
///
/// Returns the outcome counters the exit code is computed from, or an
/// error string for fatal startup/save failures (exit code 2 territory).
pub fn serve(config: ServeConfig) -> Result<ServeReport, String> {
    let shards = config.dispatch_shards.max(1);
    if config.journal.is_some() && config.checkpoint.is_none() {
        return Err(
            "--journal requires --checkpoint: compaction can only truncate journal \
             records a checkpoint covers, so without one the journal grows without bound"
                .to_string(),
        );
    }
    if config.checkpoint.is_some() && config.journal.is_none() && shards > 1 {
        return Err(
            "--checkpoint without --journal requires --dispatch-shards 1: durability \
             before ack means rewriting the whole checkpoint per commit batch, which \
             only covers every session when a single shard owns them all (add \
             --journal to shard)"
                .to_string(),
        );
    }
    let deadline = config.deadline_ms.map(Duration::from_millis);
    // Restore with the deadline stripped: replaying a checkpoint or a
    // journal suffix is catch-up work, not a client request, and must not
    // be interrupted by --deadline-ms.
    let mut restore_options = config.check_options();
    restore_options.deadline = None;

    let mut sessions: HashMap<String, SpecSession> = HashMap::new();
    if let Some(path) = &config.checkpoint {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let restored = restore_sessions(&text, restore_options)
                    .map_err(|e| format!("cannot restore checkpoint {path}: {e}"))?;
                let names = restored.len();
                let appends: u64 = restored.iter().map(|(_, s)| s.stats().appends).sum();
                sessions.extend(restored);
                eprintln!(
                    "restored checkpoint {path}: {names} session(s), {appends} acked append(s)"
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot read checkpoint {path}: {e}")),
        }
    }

    let mut journal_file = None;
    let mut compact_on_start = false;
    if let Some(path) = &config.journal {
        let report = journal::replay(path, &mut sessions, restore_options)?;
        if report.applied > 0 || report.torn {
            eprintln!(
                "replayed {} journaled append(s) past the checkpoint ({} already covered{})",
                report.applied,
                report.skipped,
                if report.torn {
                    "; dropped one torn, never-acked trailing record"
                } else {
                    ""
                }
            );
        }
        let mut open = journal::Journal::open(path)?;
        open.assume_records(report.applied + report.skipped);
        journal_file = Some(open);
        // Applied records mean the checkpoint is stale by the replayed
        // suffix; a torn tail means the last run died mid-write. Either
        // way, compact so the journal stays short (and fully covered)
        // across repeated crash/restart cycles.
        compact_on_start = report.applied > 0 || report.torn;
    }
    // The default session always exists (a fresh daemon's first
    // checkpoint is the classic single-session document, byte for byte);
    // named sessions are created on their first append.
    sessions
        .entry(DEFAULT_SESSION.to_string())
        .or_insert_with(|| SpecSession::with_options(restore_options));
    // Catch-up is done: client appends run under the configured deadline.
    for session in sessions.values_mut() {
        session.set_deadline(deadline);
    }
    if compact_on_start {
        let compacted = save_checkpoint(&config, &sessions)
            .and_then(|_| journal_file.as_mut().expect("journal is open").truncate());
        if let Err(e) = compacted {
            eprintln!("startup compaction failed (journal kept): {e}");
        }
    }

    let listener = if let Some(path) = &config.socket {
        conn::Listener::bind_unix(path)?
    } else if let Some(addr) = &config.listen {
        conn::Listener::bind_tcp(addr)?
    } else {
        return Err("one of --socket or --listen is required".to_string());
    };
    eprintln!("listening on {}", listener.local_display());

    install_signal_handlers();

    let gauges = Arc::new(Gauges::new(shards));
    gauges
        .sessions
        .store(sessions.len() as u64, Ordering::SeqCst);
    gauges.appends.store(
        sessions.values().map(|s| s.stats().appends).sum(),
        Ordering::SeqCst,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let conns: dispatch::Conns = Arc::new(Mutex::new(HashMap::new()));
    let journal = journal_file.map(|j| Arc::new(Mutex::new(j)));
    let (ctrl_tx, ctrl_rx) = mpsc::channel();

    // Partition the restored sessions across their owning shards.
    let mut partitions: Vec<HashMap<String, SpecSession>> =
        (0..shards).map(|_| HashMap::new()).collect();
    for (name, session) in sessions {
        let index = shard_of(&name, shards);
        partitions[index].insert(name, session);
    }

    let options = config.check_options();
    let per_shard_cap = (REQUEST_QUEUE_CAP / shards).max(64);
    let mut shard_txs = Vec::with_capacity(shards);
    let mut shard_handles = Vec::with_capacity(shards);
    for (index, partition) in partitions.into_iter().enumerate() {
        let (tx, rx) = mpsc::sync_channel(per_shard_cap);
        shard_txs.push(tx);
        let shard = dispatch::Shard {
            index,
            sessions: partition,
            journal: journal.clone(),
            config: config.clone(),
            options,
            gauges: Arc::clone(&gauges),
            ctrl: ctrl_tx.clone(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("compc-serve-shard-{index}"))
            .spawn(move || dispatch::shard_loop(rx, shard))
            .map_err(|e| format!("cannot spawn dispatch shard {index}: {e}"))?;
        shard_handles.push(handle);
    }

    let accept = {
        let routes = conn::Routes {
            shards: shard_txs.clone(),
            ctrl: ctrl_tx.clone(),
            conns: Arc::clone(&conns),
        };
        let accept_config = config.clone();
        let gauges = Arc::clone(&gauges);
        let stop = Arc::clone(&stop);
        let limits = conn::ConnLimits {
            max_conns: config.max_conns.max(1),
            idle_timeout: match config.idle_timeout_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            max_line_bytes: config.max_line_bytes.max(64),
        };
        std::thread::Builder::new()
            .name("compc-serve-accept".to_string())
            .spawn(move || conn::accept_loop(listener, routes, accept_config, gauges, stop, limits))
            .map_err(|e| format!("cannot spawn accept thread: {e}"))?
    };
    drop(ctrl_tx);

    let control = dispatch::Control {
        shard_txs,
        journal,
        config,
        gauges: Arc::clone(&gauges),
        conns,
        stop: Arc::clone(&stop),
    };
    let outcome = dispatch::control_loop(ctrl_rx, control);
    stop.store(true, Ordering::SeqCst);
    // The control loop's exit path resumed every shard with `Exit`, so
    // the shards are joinable; joining them before the accept thread
    // (which joins the readers and writers) keeps teardown deterministic.
    for handle in shard_handles {
        let _ = handle.join();
    }
    let _ = accept.join();
    outcome?;
    Ok(ServeReport::from_gauges(&gauges))
}

/// Writes the multi-session checkpoint document for `sessions` (used by
/// the startup compaction, before the shard threads exist).
fn save_checkpoint(
    config: &ServeConfig,
    sessions: &HashMap<String, SpecSession>,
) -> Result<(), String> {
    let Some(path) = &config.checkpoint else {
        return Ok(());
    };
    let entries = sessions
        .iter()
        .map(|(name, s)| (name.clone(), s.stats().appends, s.spec().to_json()))
        .collect();
    journal::write_checkpoint_file(path, &sessions_checkpoint_json(entries))
}
