//! Incremental checking over the JSON spec format.
//!
//! [`SpecSession`] is the data-layer face of [`compc_core::Session`]: it
//! accumulates [`SystemSpec`] *fragments* (the same versioned JSON format
//! `compc-check` reads — see [`SystemSpec::merge`]), builds the merged
//! system after each append, and hands it to the core session, which
//! recomputes only the reduction levels the append could have changed. The
//! `compc-serve` daemon speaks exactly this layer over a socket.
//!
//! With [`compc_core::CheckOptions::oracle`] set, every verdict on a system
//! within [`compc_oracle::RECOMMENDED_NODE_CAP`] nodes is additionally
//! cross-checked against the brute-force definitional oracle; a
//! disagreement surfaces as [`SpecSessionError::OracleDisagreement`] (an
//! engine bug, never expected on a healthy build).

use crate::spec::{SpecError, SystemSpec, SPEC_VERSION};
use compc_core::{CheckOptions, Checker, SessionError, SessionStats, Verdict};
use compc_json::Value;

/// Why a [`SpecSession`] operation failed.
#[derive(Debug)]
pub enum SpecSessionError {
    /// The fragment did not parse, merge, or build (the session spec is
    /// unchanged).
    Spec(SpecError),
    /// The merged system was rejected or interrupted by the core session.
    Session(SessionError),
    /// The engine and the brute-force oracle disagreed on the merged
    /// system — an engine bug; the verdict is still installed so the
    /// disagreeing input can be extracted and reported.
    OracleDisagreement {
        /// What the reduction engine said.
        engine_correct: bool,
    },
    /// A checkpoint document was malformed; the message names the field.
    Checkpoint(String),
}

impl std::fmt::Display for SpecSessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecSessionError::Spec(e) => write!(f, "{e}"),
            SpecSessionError::Session(e) => write!(f, "{e}"),
            SpecSessionError::OracleDisagreement { engine_correct } => write!(
                f,
                "engine/oracle disagreement: engine says {}, oracle says {} — \
                 this is an engine bug; please report the input",
                engine_correct, !engine_correct
            ),
            SpecSessionError::Checkpoint(msg) => write!(f, "invalid checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for SpecSessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecSessionError::Spec(e) => Some(e),
            SpecSessionError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for SpecSessionError {
    fn from(e: SpecError) -> Self {
        SpecSessionError::Spec(e)
    }
}

impl From<SessionError> for SpecSessionError {
    fn from(e: SessionError) -> Self {
        SpecSessionError::Session(e)
    }
}

impl SpecSessionError {
    /// Whether this error leaves the session resumable (a deadline or
    /// cancellation, as opposed to a rejected input).
    pub fn is_interrupted(&self) -> bool {
        matches!(
            self,
            SpecSessionError::Session(SessionError::Interrupted(_))
        )
    }
}

/// A restorable copy of a [`SpecSession`]'s state.
pub struct SpecSnapshot {
    spec: SystemSpec,
    appends_offset: u64,
    inner: compc_core::SessionSnapshot,
}

/// An incremental Comp-C checker fed by JSON spec fragments.
///
/// ```
/// use compc::session::SpecSession;
/// use compc::spec::SystemSpec;
///
/// let spec = SystemSpec::parse(
///     r#"{
///         "schedules": ["S"],
///         "nodes": [
///             {"name": "T1", "kind": "root", "home": "S"},
///             {"name": "o1", "kind": "leaf", "parent": "T1"}
///         ]
///     }"#,
/// )
/// .unwrap();
/// let mut session = SpecSession::new();
/// let verdict = session.append(&spec).unwrap();
/// assert!(verdict.is_correct());
/// ```
pub struct SpecSession {
    spec: SystemSpec,
    /// Appends recorded by a restored checkpoint beyond what the inner
    /// session saw (the restore replays the whole prefix as one batch
    /// append, but the counter must keep counting from where it was).
    appends_offset: u64,
    inner: compc_core::Session,
}

impl Default for SpecSession {
    fn default() -> Self {
        SpecSession::new()
    }
}

impl SpecSession {
    /// An empty session with default [`CheckOptions`].
    pub fn new() -> SpecSession {
        SpecSession::with_options(CheckOptions::default())
    }

    /// An empty session with the given options ([`CheckOptions::oracle`]
    /// enables the per-append brute-force cross-check).
    pub fn with_options(options: CheckOptions) -> SpecSession {
        SpecSession {
            spec: SystemSpec {
                auto_propagate: false,
                ..SystemSpec::default()
            },
            appends_offset: 0,
            inner: compc_core::Session::with_options(options),
        }
    }

    /// The options this session checks with.
    pub fn options(&self) -> CheckOptions {
        self.inner.options()
    }

    /// Replaces the per-append deadline (see
    /// [`compc_core::Session::set_deadline`]); `None` disables it. Safe
    /// mid-session — the budget is read afresh at each append.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Duration>) {
        self.inner.set_deadline(deadline);
    }

    /// The accumulated spec (every accepted fragment merged).
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The current merged system, if any append was accepted.
    pub fn system(&self) -> Option<&compc_model::CompositeSystem> {
        self.inner.system()
    }

    /// The verdict of the last completed append.
    pub fn verdict(&self) -> Option<&Verdict> {
        self.inner.verdict()
    }

    /// Work counters for the incremental path. `appends` counts across
    /// checkpoint restores: a session rebuilt with
    /// [`SpecSession::from_checkpoint`] resumes the recorded count.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.inner.stats();
        stats.appends += self.appends_offset;
        stats
    }

    /// The cooperative cancel token (see
    /// [`compc_core::Session::cancel_token`]).
    pub fn cancel_token(&self) -> std::sync::Arc<std::sync::atomic::AtomicBool> {
        self.inner.cancel_token()
    }

    /// Merges `fragment` into the accumulated spec, builds the extended
    /// system and checks it incrementally. On a spec-level error (parse,
    /// merge, build, invalid extension) the session is unchanged; on an
    /// interruption the merged spec is kept and re-appending the same
    /// fragment resumes from the completed levels.
    pub fn append(&mut self, fragment: &SystemSpec) -> Result<&Verdict, SpecSessionError> {
        let mut merged = self.spec.clone();
        merged.merge(fragment)?;
        let sys = merged.build()?;
        let oracle_input =
            if self.options().oracle && sys.node_count() <= compc_oracle::RECOMMENDED_NODE_CAP {
                Some(sys.clone())
            } else {
                None
            };
        match self.inner.append(sys) {
            Ok(_) => {}
            Err(e @ SessionError::Interrupted(_)) => {
                self.spec = merged;
                return Err(e.into());
            }
            Err(e) => return Err(e.into()),
        }
        self.spec = merged;
        let verdict = self.inner.verdict().expect("append just completed");
        if let Some(sys) = oracle_input {
            let engine_correct = verdict.is_correct();
            if compc_oracle::decide(&sys).accepted() != engine_correct {
                return Err(SpecSessionError::OracleDisagreement { engine_correct });
            }
        }
        Ok(verdict)
    }

    /// [`SpecSession::append`] from JSON text (one spec document).
    pub fn append_json(&mut self, text: &str) -> Result<&Verdict, SpecSessionError> {
        let fragment = SystemSpec::parse(text)?;
        self.append(&fragment)
    }

    /// Replays `fragments` append-by-append through a fresh session with
    /// `options`, demanding after **every** append that the incremental
    /// verdict is bit-identical (full `Debug` structure: fronts, witness,
    /// cycle) to a from-scratch batch check of the merged prefix. This is
    /// [`SystemSpec::into_appends`] prefix-validity as an executable
    /// contract: each prefix must build and decide exactly like a batch
    /// submission of the same fragments. Returns the per-append verdicts;
    /// any divergence (rejected fragment, missing system, non-identical
    /// verdict) comes back as a human-readable message.
    pub fn replay_bit_identical(
        fragments: &[SystemSpec],
        options: CheckOptions,
    ) -> Result<Vec<Verdict>, String> {
        let mut session = SpecSession::with_options(options);
        let mut verdicts = Vec::with_capacity(fragments.len());
        for (i, fragment) in fragments.iter().enumerate() {
            let incremental = session
                .append(fragment)
                .map_err(|e| format!("fragment {} of {} rejected: {e}", i + 1, fragments.len()))?
                .clone();
            let prefix = session
                .system()
                .ok_or_else(|| format!("no system after fragment {} appended", i + 1))?;
            let batch = Checker::with_options(options).check(prefix);
            if format!("{incremental:?}") != format!("{batch:?}") {
                return Err(format!(
                    "verdict after fragment {} of {} not bit-identical to a batch \
                     check of the merged prefix: incremental {:?} vs batch {:?}",
                    i + 1,
                    fragments.len(),
                    incremental.is_correct(),
                    batch.is_correct(),
                ));
            }
            verdicts.push(incremental);
        }
        Ok(verdicts)
    }

    /// A restorable copy of the session's state.
    pub fn snapshot(&self) -> SpecSnapshot {
        SpecSnapshot {
            spec: self.spec.clone(),
            appends_offset: self.appends_offset,
            inner: self.inner.snapshot(),
        }
    }

    /// Restores a state previously captured with [`SpecSession::snapshot`].
    pub fn restore(&mut self, snapshot: SpecSnapshot) {
        self.spec = snapshot.spec;
        self.appends_offset = snapshot.appends_offset;
        self.inner.restore(snapshot.inner);
    }

    /// Serializes the session's accumulated spec as a versioned JSON
    /// checkpoint document (pretty-printed, trailing newline).
    pub fn checkpoint_json(&self) -> String {
        let doc = Value::Object(vec![
            ("version".into(), Value::from(SPEC_VERSION)),
            ("appends".into(), Value::from(self.stats().appends)),
            ("spec".into(), self.spec.to_json()),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        text
    }

    /// Rebuilds a session from a [`SpecSession::checkpoint_json`] document:
    /// the checkpointed spec is re-appended as one batch, restoring the
    /// per-level caches so subsequent appends are incremental again. The
    /// recorded append count is resumed, so `stats().appends` keeps
    /// counting across the restore.
    pub fn from_checkpoint(
        text: &str,
        options: CheckOptions,
    ) -> Result<SpecSession, SpecSessionError> {
        let doc = compc_json::parse(text)
            .map_err(|e| SpecSessionError::Checkpoint(format!("not JSON: {e}")))?;
        let entries = doc
            .as_object()
            .ok_or_else(|| SpecSessionError::Checkpoint("top level must be an object".into()))?;
        let mut spec_value = None;
        let mut recorded_appends = 0u64;
        for (key, val) in entries {
            match key.as_str() {
                "version" => {
                    let v = val.as_u64().ok_or_else(|| {
                        SpecSessionError::Checkpoint("version must be an integer".into())
                    })?;
                    if v != SPEC_VERSION {
                        return Err(SpecSessionError::Checkpoint(format!(
                            "unsupported checkpoint version {v}"
                        )));
                    }
                }
                "appends" => {
                    recorded_appends = val.as_u64().ok_or_else(|| {
                        SpecSessionError::Checkpoint("appends must be an integer".into())
                    })?;
                }
                "spec" => spec_value = Some(val),
                other => {
                    return Err(SpecSessionError::Checkpoint(format!(
                        "unknown field \"{other}\""
                    )))
                }
            }
        }
        let spec_value = spec_value
            .ok_or_else(|| SpecSessionError::Checkpoint("missing \"spec\" field".into()))?;
        SpecSession::from_parts(recorded_appends, spec_value, options)
    }

    /// Rebuilds one session from its checkpointed parts (shared by the
    /// single-session and multi-session document formats).
    fn from_parts(
        recorded_appends: u64,
        spec_value: &Value,
        options: CheckOptions,
    ) -> Result<SpecSession, SpecSessionError> {
        let spec = SystemSpec::from_json(spec_value)?;
        let mut session = SpecSession::with_options(options);
        if !spec.nodes.is_empty() {
            session.append(&spec)?;
        }
        session.appends_offset = recorded_appends.saturating_sub(session.inner.stats().appends);
        Ok(session)
    }
}

/// The session name an append without a `"session"` field lands in.
pub const DEFAULT_SESSION: &str = "default";

/// Serializes named sessions as one checkpoint document.
///
/// Entries are `(name, recorded appends, spec JSON)`. A lone `"default"`
/// session is written in the exact single-session layout
/// [`SpecSession::checkpoint_json`] produces, so a daemon that never saw a
/// named session stays byte-compatible with pre-multi-session checkpoints.
/// Anything else becomes `{"version": V, "sessions": [...]}` with entries
/// sorted by name (deterministic, diffable).
pub fn sessions_checkpoint_json(mut entries: Vec<(String, u64, Value)>) -> String {
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    if entries.len() == 1 && entries[0].0 == DEFAULT_SESSION {
        let (_, appends, spec) = entries.pop().expect("one entry");
        let doc = Value::Object(vec![
            ("version".into(), Value::from(SPEC_VERSION)),
            ("appends".into(), Value::from(appends)),
            ("spec".into(), spec),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        return text;
    }
    let sessions = entries
        .into_iter()
        .map(|(name, appends, spec)| {
            Value::Object(vec![
                ("session".into(), Value::from(name)),
                ("appends".into(), Value::from(appends)),
                ("spec".into(), spec),
            ])
        })
        .collect::<Vec<_>>();
    let doc = Value::Object(vec![
        ("version".into(), Value::from(SPEC_VERSION)),
        ("sessions".into(), Value::Array(sessions)),
    ]);
    let mut text = doc.to_pretty();
    text.push('\n');
    text
}

/// Restores named sessions from either checkpoint document format: a
/// legacy single-session document becomes the `"default"` session, and a
/// `{"version", "sessions": [...]}` document restores every named entry.
/// Unknown fields and duplicate session names are hard errors — a
/// checkpoint is the durability root, so anything unexpected in one means
/// state may be unrecoverable and must not be silently dropped.
pub fn restore_sessions(
    text: &str,
    options: CheckOptions,
) -> Result<Vec<(String, SpecSession)>, SpecSessionError> {
    let doc = compc_json::parse(text)
        .map_err(|e| SpecSessionError::Checkpoint(format!("not JSON: {e}")))?;
    let entries = doc
        .as_object()
        .ok_or_else(|| SpecSessionError::Checkpoint("top level must be an object".into()))?;
    if doc.get("sessions").is_none() {
        return Ok(vec![(
            DEFAULT_SESSION.to_string(),
            SpecSession::from_checkpoint(text, options)?,
        )]);
    }
    let mut sessions_value = None;
    for (key, val) in entries {
        match key.as_str() {
            "version" => {
                let v = val.as_u64().ok_or_else(|| {
                    SpecSessionError::Checkpoint("version must be an integer".into())
                })?;
                if v != SPEC_VERSION {
                    return Err(SpecSessionError::Checkpoint(format!(
                        "unsupported checkpoint version {v}"
                    )));
                }
            }
            "sessions" => sessions_value = val.as_array(),
            other => {
                return Err(SpecSessionError::Checkpoint(format!(
                    "unknown field \"{other}\""
                )))
            }
        }
    }
    let sessions_value = sessions_value
        .ok_or_else(|| SpecSessionError::Checkpoint("\"sessions\" must be an array".into()))?;
    let mut restored: Vec<(String, SpecSession)> = Vec::with_capacity(sessions_value.len());
    for (index, entry) in sessions_value.iter().enumerate() {
        let fields = entry.as_object().ok_or_else(|| {
            SpecSessionError::Checkpoint(format!("sessions[{index}] must be an object"))
        })?;
        let mut name = None;
        let mut appends = 0u64;
        let mut spec_value = None;
        for (key, val) in fields {
            match key.as_str() {
                "session" => {
                    name = val.as_str().filter(|s| !s.is_empty()).map(str::to_string);
                    if name.is_none() {
                        return Err(SpecSessionError::Checkpoint(format!(
                            "sessions[{index}].session must be a non-empty string"
                        )));
                    }
                }
                "appends" => {
                    appends = val.as_u64().ok_or_else(|| {
                        SpecSessionError::Checkpoint(format!(
                            "sessions[{index}].appends must be an integer"
                        ))
                    })?;
                }
                "spec" => spec_value = Some(val),
                other => {
                    return Err(SpecSessionError::Checkpoint(format!(
                        "sessions[{index}] has unknown field \"{other}\""
                    )))
                }
            }
        }
        let name = name.ok_or_else(|| {
            SpecSessionError::Checkpoint(format!("sessions[{index}] is missing \"session\""))
        })?;
        if restored.iter().any(|(n, _)| *n == name) {
            return Err(SpecSessionError::Checkpoint(format!(
                "duplicate session \"{name}\""
            )));
        }
        let spec_value = spec_value.ok_or_else(|| {
            SpecSessionError::Checkpoint(format!("sessions[{index}] is missing \"spec\""))
        })?;
        restored.push((name, SpecSession::from_parts(appends, spec_value, options)?));
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compc_core::check;

    fn two_stack_spec() -> SystemSpec {
        SystemSpec::parse(
            r#"{
                "schedules": ["mw", "db"],
                "nodes": [
                    {"name": "T1", "kind": "root", "home": "mw"},
                    {"name": "T2", "kind": "root", "home": "mw"},
                    {"name": "u1", "kind": "subtx", "parent": "T1", "home": "db"},
                    {"name": "u2", "kind": "subtx", "parent": "T2", "home": "db"},
                    {"name": "w1", "kind": "leaf", "parent": "u1"},
                    {"name": "w2", "kind": "leaf", "parent": "u2"}
                ],
                "conflicts": [["w1", "w2"]],
                "output_weak": [["w1", "w2"]]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn into_appends_replays_to_the_same_verdict() {
        let spec = two_stack_spec();
        let fragments = spec.into_appends();
        assert_eq!(fragments.len(), 2, "one fragment per root subtree");
        let mut session = SpecSession::new();
        let mut last = None;
        for frag in &fragments {
            last = Some(session.append(frag).unwrap().clone());
        }
        let merged_sys = session.system().unwrap().clone();
        let batch = check(&merged_sys);
        assert_eq!(
            format!("{:?}", last.unwrap()),
            format!("{batch:?}"),
            "replayed verdict must be bit-identical to the batch check"
        );
    }

    #[test]
    fn merge_is_idempotent_and_rejects_redeclaration() {
        let spec = two_stack_spec();
        let mut acc = SystemSpec {
            auto_propagate: false,
            ..SystemSpec::default()
        };
        acc.merge(&spec).unwrap();
        let once = acc.clone();
        acc.merge(&spec).unwrap();
        assert_eq!(acc, once, "re-merging the same fragment changes nothing");
        let mut bad = spec.clone();
        bad.nodes[0].home = Some("db".into());
        assert!(matches!(acc.merge(&bad), Err(SpecError::BadNode(_))));
    }

    #[test]
    fn checkpoint_roundtrip_restores_the_session() {
        let mut session = SpecSession::new();
        let fragments = two_stack_spec().into_appends();
        for fragment in &fragments {
            session.append(fragment).unwrap();
        }
        assert_eq!(session.stats().appends, fragments.len() as u64);
        let checkpoint = session.checkpoint_json();
        let restored = SpecSession::from_checkpoint(&checkpoint, CheckOptions::default()).unwrap();
        assert_eq!(restored.spec(), session.spec());
        assert_eq!(
            format!("{:?}", restored.verdict().unwrap()),
            format!("{:?}", session.verdict().unwrap())
        );
        // The append counter resumes from the recorded count even though
        // the restore replayed the whole prefix as one batch append.
        assert_eq!(restored.stats().appends, fragments.len() as u64);
        let junk = SpecSession::from_checkpoint("{]", CheckOptions::default());
        assert!(matches!(junk, Err(SpecSessionError::Checkpoint(_))));
    }

    #[test]
    fn oracle_cross_check_runs_under_the_cap() {
        let mut session = SpecSession::with_options(CheckOptions::new().oracle(true));
        let verdict = session.append(&two_stack_spec()).unwrap();
        assert!(verdict.is_correct(), "oracle agreed, verdict installed");
    }

    #[test]
    fn multi_session_checkpoint_roundtrip_and_legacy_byte_compat() {
        let mut session = SpecSession::new();
        for fragment in two_stack_spec().into_appends() {
            session.append(&fragment).unwrap();
        }
        // A lone "default" session serializes byte-identically to the
        // single-session format, and that format restores as "default".
        let legacy = session.checkpoint_json();
        let entries = vec![(
            DEFAULT_SESSION.to_string(),
            session.stats().appends,
            session.spec().to_json(),
        )];
        assert_eq!(sessions_checkpoint_json(entries), legacy);
        let restored = restore_sessions(&legacy, CheckOptions::default()).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].0, DEFAULT_SESSION);
        assert_eq!(restored[0].1.spec(), session.spec());

        // Multiple names roundtrip through the "sessions" format, sorted.
        let doc = sessions_checkpoint_json(vec![
            (
                "beta".to_string(),
                session.stats().appends,
                session.spec().to_json(),
            ),
            ("alpha".to_string(), 0, SpecSession::new().spec().to_json()),
        ]);
        let restored = restore_sessions(&doc, CheckOptions::default()).unwrap();
        assert_eq!(restored[0].0, "alpha");
        assert_eq!(restored[1].0, "beta");
        assert_eq!(restored[1].1.stats().appends, session.stats().appends);
        assert_eq!(restored[1].1.spec(), session.spec());

        // Duplicate names and unknown fields are hard errors.
        let dup = sessions_checkpoint_json(vec![
            ("x".to_string(), 0, SpecSession::new().spec().to_json()),
            ("y".to_string(), 0, SpecSession::new().spec().to_json()),
        ])
        .replace("\"y\"", "\"x\"");
        assert!(matches!(
            restore_sessions(&dup, CheckOptions::default()),
            Err(SpecSessionError::Checkpoint(_))
        ));
        let junk = doc.replace("\"sessions\"", "\"sesssions\"");
        assert!(matches!(
            restore_sessions(&junk, CheckOptions::default()),
            Err(SpecSessionError::Checkpoint(_))
        ));
    }

    #[test]
    fn spec_level_rejection_leaves_session_untouched() {
        let mut session = SpecSession::new();
        session.append(&two_stack_spec()).unwrap();
        let before = session.spec().clone();
        let bad = SystemSpec {
            version: 99,
            ..SystemSpec::default()
        };
        let err = session.append(&bad).unwrap_err();
        assert!(matches!(err, SpecSessionError::Spec(_)), "{err}");
        assert_eq!(session.spec(), &before);
        assert!(session.verdict().unwrap().is_correct());
    }
}
