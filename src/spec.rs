//! A JSON-friendly description of composite systems.
//!
//! [`SystemSpec`] lets executions be written down (or logged by an external
//! component system) as plain data and fed to the checker without writing
//! Rust — the `compc-check` CLI consumes exactly this format:
//!
//! ```json
//! {
//!   "version": 1,
//!   "schedules": ["middleware", "db"],
//!   "nodes": [
//!     { "name": "T1", "kind": "root", "home": "middleware" },
//!     { "name": "u1", "kind": "subtx", "parent": "T1", "home": "db" },
//!     { "name": "r1", "kind": "leaf", "parent": "u1" }
//!   ],
//!   "conflicts": [["r1", "r2"]],
//!   "output_weak": [["r1", "r2"]],
//!   "auto_propagate": true
//! }
//! ```
//!
//! The `"version"` field is optional (it defaults to the current version,
//! [`SPEC_VERSION`]) but is rejected when it names a version this build does
//! not understand — forward-incompatible documents fail loudly instead of
//! being misread. Node order matters only in that parents must be declared
//! before their children. All relations refer to nodes by name, and every
//! load error names the offending node or relation entry.

use compc_json::Value;
use compc_model::{CompositeSystem, ModelError, NodeId, SystemBuilder};
use std::collections::BTreeMap;

/// The spec format version this build reads and writes.
pub const SPEC_VERSION: u64 = 1;

/// One node of the computational forest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSpec {
    /// Unique display name.
    pub name: String,
    /// `"root"`, `"subtx"` or `"leaf"`.
    pub kind: String,
    /// Required for `subtx` and `leaf`: the parent transaction's name.
    pub parent: Option<String>,
    /// Required for `root` and `subtx`: the home schedule's name.
    pub home: Option<String>,
}

/// A whole composite system as declarative data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemSpec {
    /// Format version (see [`SPEC_VERSION`]).
    pub version: u64,
    /// Schedule names (components).
    pub schedules: Vec<String>,
    /// The forest, parents before children.
    pub nodes: Vec<NodeSpec>,
    /// Conflicting operation pairs (per the pair's common schedule).
    pub conflicts: Vec<(String, String)>,
    /// Weak output-order pairs `a ≺_S b`.
    pub output_weak: Vec<(String, String)>,
    /// Strong output-order pairs `a ≪_S b`.
    pub output_strong: Vec<(String, String)>,
    /// Weak input-order pairs `t → t'`.
    pub input_weak: Vec<(String, String)>,
    /// Strong input-order pairs `t →→ t'`.
    pub input_strong: Vec<(String, String)>,
    /// Weak intra-transaction order pairs `o ≺_t o'`.
    pub tx_weak: Vec<(String, String)>,
    /// Strong intra-transaction order pairs `o ≪_t o'`.
    pub tx_strong: Vec<(String, String)>,
    /// Apply Definition 4.7 automatically after loading (recommended).
    pub auto_propagate: bool,
}

impl Default for SystemSpec {
    fn default() -> Self {
        SystemSpec {
            version: SPEC_VERSION,
            schedules: Vec::new(),
            nodes: Vec::new(),
            conflicts: Vec::new(),
            output_weak: Vec::new(),
            output_strong: Vec::new(),
            input_weak: Vec::new(),
            input_strong: Vec::new(),
            tx_weak: Vec::new(),
            tx_strong: Vec::new(),
            auto_propagate: true,
        }
    }
}

/// Errors when reading or materializing a [`SystemSpec`].
#[derive(Debug)]
pub enum SpecError {
    /// The document is not valid JSON, or a field has the wrong shape. The
    /// message names the offending position or field.
    Parse(String),
    /// The document declares a format version this build does not know.
    UnsupportedVersion(u64),
    /// A name was referenced but never declared; `context` names the
    /// relation entry or node field that referenced it.
    UnknownName {
        /// The undeclared name.
        name: String,
        /// Where it was referenced, e.g. `conflicts[2]` or `nodes[0].home`.
        context: String,
    },
    /// A name was declared twice.
    DuplicateName(String),
    /// A node's kind/parent/home combination is inconsistent; the message
    /// names the node.
    BadNode(String),
    /// The resulting system violates the model; `context` names the
    /// relation entry that triggered the violation.
    Model {
        /// The relation entry, e.g. `output_weak[3] [w1, w2]`, or
        /// `propagate_orders` / `build` for whole-system violations.
        context: String,
        /// The underlying model error.
        source: ModelError,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(msg) => write!(f, "spec parse error: {msg}"),
            SpecError::UnsupportedVersion(v) => write!(
                f,
                "unsupported spec version {v} (this build reads version {SPEC_VERSION})"
            ),
            SpecError::UnknownName { name, context } => {
                write!(f, "unknown name \"{name}\" in {context}")
            }
            SpecError::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            SpecError::BadNode(n) => write!(f, "inconsistent node declaration: {n}"),
            SpecError::Model { context, source } => {
                write!(f, "model violation at {context}: {source}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// JSON reading
// ---------------------------------------------------------------------------

fn parse_err(msg: impl Into<String>) -> SpecError {
    SpecError::Parse(msg.into())
}

fn expect_string(v: &Value, ctx: &str) -> Result<String, SpecError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| parse_err(format!("{ctx}: expected a string, got {}", v.type_name())))
}

fn expect_string_list(v: &Value, ctx: &str) -> Result<Vec<String>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| parse_err(format!("{ctx}: expected an array, got {}", v.type_name())))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| expect_string(item, &format!("{ctx}[{i}]")))
        .collect()
}

fn expect_pair_list(v: &Value, ctx: &str) -> Result<Vec<(String, String)>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| parse_err(format!("{ctx}: expected an array, got {}", v.type_name())))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let pair = item
                .as_array()
                .ok_or_else(|| parse_err(format!("{ctx}[{i}]: expected a [from, to] pair")))?;
            if pair.len() != 2 {
                return Err(parse_err(format!(
                    "{ctx}[{i}]: expected exactly 2 names, got {}",
                    pair.len()
                )));
            }
            Ok((
                expect_string(&pair[0], &format!("{ctx}[{i}][0]"))?,
                expect_string(&pair[1], &format!("{ctx}[{i}][1]"))?,
            ))
        })
        .collect()
}

fn node_from_json(v: &Value, idx: usize) -> Result<NodeSpec, SpecError> {
    let ctx = format!("nodes[{idx}]");
    let entries = v
        .as_object()
        .ok_or_else(|| parse_err(format!("{ctx}: expected an object, got {}", v.type_name())))?;
    let mut name = None;
    let mut kind = None;
    let mut parent = None;
    let mut home = None;
    for (key, val) in entries {
        match key.as_str() {
            "name" => name = Some(expect_string(val, &format!("{ctx}.name"))?),
            "kind" => kind = Some(expect_string(val, &format!("{ctx}.kind"))?),
            "parent" => parent = Some(expect_string(val, &format!("{ctx}.parent"))?),
            "home" => home = Some(expect_string(val, &format!("{ctx}.home"))?),
            other => {
                return Err(parse_err(format!("{ctx}: unknown field \"{other}\"")));
            }
        }
    }
    let name = name.ok_or_else(|| parse_err(format!("{ctx}: missing \"name\"")))?;
    let kind = kind.ok_or_else(|| parse_err(format!("{ctx} (\"{name}\"): missing \"kind\"")))?;
    Ok(NodeSpec {
        name,
        kind,
        parent,
        home,
    })
}

impl SystemSpec {
    /// Reads a spec from JSON text. Errors carry source positions (for
    /// malformed JSON) or the offending field/entry (for shape problems).
    pub fn parse(input: &str) -> Result<SystemSpec, SpecError> {
        let value = compc_json::parse(input).map_err(|e| SpecError::Parse(e.to_string()))?;
        Self::from_json(&value)
    }

    /// Reads a spec from an already-parsed JSON value.
    pub fn from_json(value: &Value) -> Result<SystemSpec, SpecError> {
        let entries = value.as_object().ok_or_else(|| {
            parse_err(format!(
                "top level: expected an object, got {}",
                value.type_name()
            ))
        })?;
        let mut spec = SystemSpec {
            auto_propagate: true,
            ..SystemSpec::default()
        };
        for (key, val) in entries {
            match key.as_str() {
                "version" => {
                    let v = val
                        .as_u64()
                        .ok_or_else(|| parse_err("version: expected a non-negative integer"))?;
                    if v != SPEC_VERSION {
                        return Err(SpecError::UnsupportedVersion(v));
                    }
                    spec.version = v;
                }
                "schedules" => spec.schedules = expect_string_list(val, "schedules")?,
                "nodes" => {
                    let items = val.as_array().ok_or_else(|| {
                        parse_err(format!("nodes: expected an array, got {}", val.type_name()))
                    })?;
                    spec.nodes = items
                        .iter()
                        .enumerate()
                        .map(|(i, item)| node_from_json(item, i))
                        .collect::<Result<_, _>>()?;
                }
                "conflicts" => spec.conflicts = expect_pair_list(val, "conflicts")?,
                "output_weak" => spec.output_weak = expect_pair_list(val, "output_weak")?,
                "output_strong" => spec.output_strong = expect_pair_list(val, "output_strong")?,
                "input_weak" => spec.input_weak = expect_pair_list(val, "input_weak")?,
                "input_strong" => spec.input_strong = expect_pair_list(val, "input_strong")?,
                "tx_weak" => spec.tx_weak = expect_pair_list(val, "tx_weak")?,
                "tx_strong" => spec.tx_strong = expect_pair_list(val, "tx_strong")?,
                "auto_propagate" => {
                    spec.auto_propagate = val
                        .as_bool()
                        .ok_or_else(|| parse_err("auto_propagate: expected a boolean"))?;
                }
                other => {
                    return Err(parse_err(format!("top level: unknown field \"{other}\"")));
                }
            }
        }
        Ok(spec)
    }

    /// Renders the spec as a JSON value (always stamped with the current
    /// [`SPEC_VERSION`]).
    pub fn to_json(&self) -> Value {
        let pairs = |rel: &[(String, String)]| -> Value {
            Value::Array(
                rel.iter()
                    .map(|(a, b)| {
                        Value::Array(vec![Value::from(a.as_str()), Value::from(b.as_str())])
                    })
                    .collect(),
            )
        };
        let mut entries: Vec<(String, Value)> = vec![
            ("version".into(), Value::from(SPEC_VERSION)),
            (
                "schedules".into(),
                Value::Array(
                    self.schedules
                        .iter()
                        .map(|s| Value::from(s.as_str()))
                        .collect(),
                ),
            ),
            (
                "nodes".into(),
                Value::Array(
                    self.nodes
                        .iter()
                        .map(|n| {
                            let mut e: Vec<(String, Value)> = vec![
                                ("name".into(), Value::from(n.name.as_str())),
                                ("kind".into(), Value::from(n.kind.as_str())),
                            ];
                            if let Some(p) = &n.parent {
                                e.push(("parent".into(), Value::from(p.as_str())));
                            }
                            if let Some(h) = &n.home {
                                e.push(("home".into(), Value::from(h.as_str())));
                            }
                            Value::Object(e)
                        })
                        .collect(),
                ),
            ),
        ];
        for (key, rel) in [
            ("conflicts", &self.conflicts),
            ("output_weak", &self.output_weak),
            ("output_strong", &self.output_strong),
            ("input_weak", &self.input_weak),
            ("input_strong", &self.input_strong),
            ("tx_weak", &self.tx_weak),
            ("tx_strong", &self.tx_strong),
        ] {
            if !rel.is_empty() {
                entries.push((key.into(), pairs(rel)));
            }
        }
        entries.push(("auto_propagate".into(), Value::Bool(self.auto_propagate)));
        Value::Object(entries)
    }
}

// ---------------------------------------------------------------------------
// Building the system
// ---------------------------------------------------------------------------

impl SystemSpec {
    /// Builds and validates the composite system this spec describes.
    pub fn build(&self) -> Result<CompositeSystem, SpecError> {
        if self.version != SPEC_VERSION {
            return Err(SpecError::UnsupportedVersion(self.version));
        }
        let mut b = SystemBuilder::new();
        let mut scheds = BTreeMap::new();
        for name in &self.schedules {
            if scheds
                .insert(name.clone(), b.schedule(name.clone()))
                .is_some()
            {
                return Err(SpecError::DuplicateName(name.clone()));
            }
        }
        let mut nodes: BTreeMap<String, NodeId> = BTreeMap::new();
        let mut is_tx: BTreeMap<String, bool> = BTreeMap::new();
        for (idx, n) in self.nodes.iter().enumerate() {
            // The builder panics (by contract) when a leaf is used as a
            // parent; the data layer must turn that into a typed error.
            if let Some(parent) = &n.parent {
                if is_tx.get(parent).copied() == Some(false) {
                    return Err(SpecError::BadNode(format!(
                        "nodes[{idx}] (\"{}\"): parent \"{parent}\" is a leaf",
                        n.name
                    )));
                }
            }
            let lookup_home = |home: &Option<String>| -> Result<_, SpecError> {
                let home = home.as_ref().ok_or_else(|| {
                    SpecError::BadNode(format!(
                        "nodes[{idx}] (\"{}\"): kind \"{}\" requires \"home\"",
                        n.name, n.kind
                    ))
                })?;
                scheds
                    .get(home)
                    .copied()
                    .ok_or_else(|| SpecError::UnknownName {
                        name: home.clone(),
                        context: format!("nodes[{idx}].home (\"{}\")", n.name),
                    })
            };
            let lookup_parent = |nodes: &BTreeMap<String, NodeId>| -> Result<NodeId, SpecError> {
                let parent = n.parent.as_ref().ok_or_else(|| {
                    SpecError::BadNode(format!(
                        "nodes[{idx}] (\"{}\"): kind \"{}\" requires \"parent\"",
                        n.name, n.kind
                    ))
                })?;
                nodes
                    .get(parent)
                    .copied()
                    .ok_or_else(|| SpecError::UnknownName {
                        name: parent.clone(),
                        context: format!("nodes[{idx}].parent (\"{}\")", n.name),
                    })
            };
            let id = match n.kind.as_str() {
                "root" => b.root(n.name.clone(), lookup_home(&n.home)?),
                "subtx" => {
                    let parent = lookup_parent(&nodes)?;
                    b.subtx(n.name.clone(), parent, lookup_home(&n.home)?)
                }
                "leaf" => b.leaf(n.name.clone(), lookup_parent(&nodes)?),
                other => {
                    return Err(SpecError::BadNode(format!(
                        "nodes[{idx}] (\"{}\"): unknown kind \"{other}\"",
                        n.name
                    )))
                }
            };
            if nodes.insert(n.name.clone(), id).is_some() {
                return Err(SpecError::DuplicateName(n.name.clone()));
            }
            is_tx.insert(n.name.clone(), n.kind != "leaf");
        }

        type Apply = fn(&mut SystemBuilder, NodeId, NodeId) -> Result<(), ModelError>;
        type Relation<'a> = (&'a str, &'a Vec<(String, String)>, Apply);
        let relations: [Relation<'_>; 7] = [
            ("conflicts", &self.conflicts, SystemBuilder::conflict),
            ("tx_weak", &self.tx_weak, SystemBuilder::tx_weak_order),
            ("tx_strong", &self.tx_strong, SystemBuilder::tx_strong_order),
            ("output_weak", &self.output_weak, SystemBuilder::output_weak),
            (
                "output_strong",
                &self.output_strong,
                SystemBuilder::output_strong,
            ),
            ("input_weak", &self.input_weak, SystemBuilder::input_weak),
            (
                "input_strong",
                &self.input_strong,
                SystemBuilder::input_strong,
            ),
        ];
        for (rel_name, pairs, apply) in relations {
            for (i, (from, to)) in pairs.iter().enumerate() {
                let context = format!("{rel_name}[{i}] [{from}, {to}]");
                let look = |name: &String| -> Result<NodeId, SpecError> {
                    nodes
                        .get(name)
                        .copied()
                        .ok_or_else(|| SpecError::UnknownName {
                            name: name.clone(),
                            context: context.clone(),
                        })
                };
                apply(&mut b, look(from)?, look(to)?).map_err(|source| SpecError::Model {
                    context: context.clone(),
                    source,
                })?;
            }
        }
        if self.auto_propagate {
            b.propagate_orders().map_err(|source| SpecError::Model {
                context: "propagate_orders".into(),
                source,
            })?;
        }
        b.build().map_err(|source| SpecError::Model {
            context: "build".into(),
            source,
        })
    }
}

// ---------------------------------------------------------------------------
// Incremental fragments
// ---------------------------------------------------------------------------

impl SystemSpec {
    /// Splits this spec into an ordered sequence of *fragments* — one per
    /// root transaction subtree — whose cumulative [`SystemSpec::merge`]
    /// rebuilds an equivalent spec. Feeding the fragments to a
    /// [`crate::session::SpecSession`] in order replays the system as a
    /// stream of appends: every prefix is itself a valid composite system
    /// (it is the restriction of the full system to complete root subtrees,
    /// with every relation pair over declared nodes included).
    ///
    /// Schedules are declared in the earliest fragment any node references
    /// them from; each relation pair lands in the first fragment where both
    /// endpoints exist (pairs naming undeclared nodes go to the last
    /// fragment, where building reports the same error a batch build
    /// would). Declared order pairs are typically a transitive *reduction*
    /// (see [`SystemSpec::from_system`]), so a pair between early-fragment
    /// endpoints can be mediated by a later-fragment node — restricting to
    /// a prefix would lose the order and violate the model axioms (an
    /// unordered conflicting pair, an unhonored intra-transaction order).
    /// Each order family is therefore emitted as its transitive closure;
    /// closure chains never cross schedules, because every operation (and
    /// transaction) executes in exactly one component. A spec with no nodes
    /// yields itself as the only fragment.
    pub fn into_appends(&self) -> Vec<SystemSpec> {
        // Fragment index per node = its root's ordinal among roots.
        let mut node_frag: BTreeMap<&str, usize> = BTreeMap::new();
        let mut roots = 0usize;
        for n in &self.nodes {
            let frag = match n.parent.as_deref().and_then(|p| node_frag.get(p)) {
                Some(&f) => f,
                None => {
                    roots += 1;
                    roots - 1
                }
            };
            node_frag.insert(n.name.as_str(), frag);
        }
        if roots == 0 {
            return vec![self.clone()];
        }
        let mut frags: Vec<SystemSpec> = (0..roots)
            .map(|_| SystemSpec {
                version: self.version,
                auto_propagate: self.auto_propagate,
                ..SystemSpec::default()
            })
            .collect();
        // Root subtrees may interleave in declaration order, so the first
        // *referencing* node of a schedule is not necessarily in the
        // earliest fragment that needs it — take the minimum. Schedules no
        // node references go to the first fragment.
        let mut sched_frag: BTreeMap<&str, usize> = BTreeMap::new();
        for n in &self.nodes {
            if let Some(home) = &n.home {
                let frag = node_frag[n.name.as_str()];
                sched_frag
                    .entry(home.as_str())
                    .and_modify(|f| *f = (*f).min(frag))
                    .or_insert(frag);
            }
        }
        for s in &self.schedules {
            let frag = sched_frag.get(s.as_str()).copied().unwrap_or(0);
            frags[frag].schedules.push(s.clone());
        }
        for n in &self.nodes {
            frags[node_frag[n.name.as_str()]].nodes.push(n.clone());
        }
        let place = |pair: &(String, String)| -> usize {
            match (
                node_frag.get(pair.0.as_str()),
                node_frag.get(pair.1.as_str()),
            ) {
                (Some(&a), Some(&b)) => a.max(b),
                _ => roots - 1,
            }
        };
        // Transitive closure of an order family (a weak family closes over
        // its strong sub-relation too, mirroring Definition 3's "strong
        // implies weak").
        let close = |families: &[&Vec<(String, String)>]| -> Vec<(String, String)> {
            let mut names: Vec<&str> = Vec::new();
            let mut idx: BTreeMap<&str, usize> = BTreeMap::new();
            for fam in families {
                for (a, b) in fam.iter() {
                    for s in [a.as_str(), b.as_str()] {
                        if !idx.contains_key(s) {
                            idx.insert(s, names.len());
                            names.push(s);
                        }
                    }
                }
            }
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
            for fam in families {
                for (a, b) in fam.iter() {
                    adj[idx[a.as_str()]].push(idx[b.as_str()]);
                }
            }
            let mut out = Vec::new();
            for src in 0..names.len() {
                let mut seen = vec![false; names.len()];
                let mut stack = adj[src].clone();
                while let Some(v) = stack.pop() {
                    if !seen[v] {
                        seen[v] = true;
                        stack.extend(adj[v].iter().copied());
                    }
                }
                for (v, reached) in seen.iter().enumerate() {
                    if *reached && v != src {
                        out.push((names[src].to_string(), names[v].to_string()));
                    }
                }
            }
            out
        };
        let output_weak = close(&[&self.output_weak, &self.output_strong]);
        let output_strong = close(&[&self.output_strong]);
        let input_weak = close(&[&self.input_weak, &self.input_strong]);
        let input_strong = close(&[&self.input_strong]);
        let tx_weak = close(&[&self.tx_weak, &self.tx_strong]);
        let tx_strong = close(&[&self.tx_strong]);
        for (rel, pick) in [
            (&self.conflicts, 0usize),
            (&output_weak, 1),
            (&output_strong, 2),
            (&input_weak, 3),
            (&input_strong, 4),
            (&tx_weak, 5),
            (&tx_strong, 6),
        ] {
            for pair in rel {
                let f = &mut frags[place(pair)];
                let target = match pick {
                    0 => &mut f.conflicts,
                    1 => &mut f.output_weak,
                    2 => &mut f.output_strong,
                    3 => &mut f.input_weak,
                    4 => &mut f.input_strong,
                    5 => &mut f.tx_weak,
                    _ => &mut f.tx_strong,
                };
                target.push(pair.clone());
            }
        }
        frags
    }

    /// Merges an append `fragment` into this spec: new schedules, nodes and
    /// relation pairs are added, already-present entries are skipped
    /// (re-appending a fragment is idempotent). A fragment that re-declares
    /// an existing node differently is rejected — appends may only extend.
    pub fn merge(&mut self, fragment: &SystemSpec) -> Result<(), SpecError> {
        if fragment.version != SPEC_VERSION {
            return Err(SpecError::UnsupportedVersion(fragment.version));
        }
        for s in &fragment.schedules {
            if !self.schedules.contains(s) {
                self.schedules.push(s.clone());
            }
        }
        for n in &fragment.nodes {
            match self.nodes.iter().find(|have| have.name == n.name) {
                None => self.nodes.push(n.clone()),
                Some(have) if have == n => {}
                Some(_) => {
                    return Err(SpecError::BadNode(format!(
                        "append re-declares node \"{}\" differently",
                        n.name
                    )))
                }
            }
        }
        for (have, add) in [
            (&mut self.conflicts, &fragment.conflicts),
            (&mut self.output_weak, &fragment.output_weak),
            (&mut self.output_strong, &fragment.output_strong),
            (&mut self.input_weak, &fragment.input_weak),
            (&mut self.input_strong, &fragment.input_strong),
            (&mut self.tx_weak, &fragment.tx_weak),
            (&mut self.tx_strong, &fragment.tx_strong),
        ] {
            for pair in add {
                if !have.contains(pair) {
                    have.push(pair.clone());
                }
            }
        }
        self.auto_propagate |= fragment.auto_propagate;
        Ok(())
    }
}

impl SystemSpec {
    /// Extracts a spec from an existing system — the reverse of
    /// [`SystemSpec::build`]. Output orders are emitted as covering pairs
    /// (the transitive reduction), which rebuild the same closures. If node
    /// names are not unique, every name is disambiguated with `#<id>`.
    pub fn from_system(sys: &CompositeSystem) -> SystemSpec {
        use std::collections::BTreeSet;
        let names: Vec<String> = {
            let raw: Vec<&str> = sys.nodes().map(|n| n.name.as_str()).collect();
            let unique: BTreeSet<&str> = raw.iter().copied().collect();
            if unique.len() == raw.len() {
                raw.into_iter().map(str::to_string).collect()
            } else {
                sys.nodes()
                    .map(|n| format!("{}#{}", n.name, n.id.0))
                    .collect()
            }
        };
        let name = |n: NodeId| names[n.index()].clone();
        let mut spec = SystemSpec {
            schedules: sys.schedules().map(|s| s.name.clone()).collect(),
            auto_propagate: false,
            ..SystemSpec::default()
        };
        for info in sys.nodes() {
            spec.nodes.push(NodeSpec {
                name: name(info.id),
                kind: match (info.parent, info.home) {
                    (None, _) => "root",
                    (Some(_), Some(_)) => "subtx",
                    (Some(_), None) => "leaf",
                }
                .into(),
                parent: info.parent.map(name),
                home: info.home.map(|h| sys.schedule(h).name.clone()),
            });
        }
        let pairs = |rel: &compc_graph::PartialOrderRel| -> Vec<(String, String)> {
            rel.covering_pairs()
                .into_iter()
                .map(|(a, b)| (names[a].clone(), names[b].clone()))
                .collect()
        };
        for s in sys.schedules() {
            for (a, b) in s.conflicts.iter() {
                spec.conflicts.push((name(a), name(b)));
            }
            spec.output_weak.extend(pairs(s.output.weak()));
            spec.output_strong.extend(pairs(s.output.strong()));
            spec.input_weak.extend(pairs(s.input.weak()));
            spec.input_strong.extend(pairs(s.input.strong()));
            for t in &s.transactions {
                spec.tx_weak.extend(pairs(t.intra.weak()));
                spec.tx_strong.extend(pairs(t.intra.strong()));
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compc_core::check;

    fn transfer_spec() -> SystemSpec {
        SystemSpec::parse(
            r#"{
                "schedules": ["mw", "db"],
                "nodes": [
                    {"name": "T1", "kind": "root", "home": "mw"},
                    {"name": "T2", "kind": "root", "home": "mw"},
                    {"name": "u1", "kind": "subtx", "parent": "T1", "home": "db"},
                    {"name": "u2", "kind": "subtx", "parent": "T2", "home": "db"},
                    {"name": "w1", "kind": "leaf", "parent": "u1"},
                    {"name": "w2", "kind": "leaf", "parent": "u2"}
                ],
                "conflicts": [["w1", "w2"]],
                "output_weak": [["w1", "w2"]]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn json_spec_builds_and_checks() {
        let sys = transfer_spec().build().unwrap();
        assert_eq!(sys.schedule_count(), 2);
        assert_eq!(sys.order(), 2);
        assert!(check(&sys).is_correct());
    }

    #[test]
    fn unknown_names_rejected_with_context() {
        let mut spec = transfer_spec();
        spec.conflicts.push(("w1".into(), "nope".into()));
        match spec.build() {
            Err(SpecError::UnknownName { name, context }) => {
                assert_eq!(name, "nope");
                assert_eq!(context, "conflicts[1] [w1, nope]");
            }
            other => panic!("expected UnknownName, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut spec = transfer_spec();
        spec.nodes.push(NodeSpec {
            name: "T1".into(),
            kind: "root".into(),
            parent: None,
            home: Some("mw".into()),
        });
        assert!(matches!(spec.build(), Err(SpecError::DuplicateName(_))));
    }

    #[test]
    fn bad_kind_rejected_names_the_node() {
        let mut spec = transfer_spec();
        spec.nodes[0].kind = "banana".into();
        match spec.build() {
            Err(SpecError::BadNode(msg)) => {
                assert!(msg.contains("T1") && msg.contains("banana"), "{msg}");
            }
            other => panic!("expected BadNode, got {other:?}"),
        }
    }

    #[test]
    fn model_violations_name_the_relation() {
        let mut spec = transfer_spec();
        // A second conflicting pair left unordered breaks axiom 1c.
        spec.output_weak.clear();
        match spec.build() {
            Err(SpecError::Model { context, .. }) => {
                // The violation surfaces when the whole system is assembled.
                assert!(!context.is_empty());
            }
            other => panic!("expected Model, got {other:?}"),
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let spec = transfer_spec();
        let json = spec.to_json().to_compact();
        let back = SystemSpec::parse(&json).unwrap();
        assert_eq!(spec, back);
        let pretty = spec.to_json().to_pretty();
        assert_eq!(SystemSpec::parse(&pretty).unwrap(), back);
    }

    #[test]
    fn version_field_accepted_and_gated() {
        let ok = SystemSpec::parse(r#"{"version": 1, "schedules": [], "nodes": []}"#);
        assert!(ok.is_ok());
        let newer = SystemSpec::parse(r#"{"version": 2, "schedules": [], "nodes": []}"#);
        assert!(matches!(newer, Err(SpecError::UnsupportedVersion(2))));
        let junk = SystemSpec::parse(r#"{"version": "one"}"#);
        assert!(matches!(junk, Err(SpecError::Parse(_))));
    }

    #[test]
    fn shape_errors_name_the_offending_entry() {
        let err =
            SystemSpec::parse(r#"{"schedules": ["S"], "nodes": [{"kind": "root"}]}"#).unwrap_err();
        assert!(err.to_string().contains("nodes[0]"), "{err}");

        let err = SystemSpec::parse(
            r#"{"schedules": [], "nodes": [], "conflicts": [["a", "b"], ["only-one"]]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("conflicts[1]"), "{err}");

        let err = SystemSpec::parse(r#"{"schedules": [], "nodes": [], "mystery": 3}"#).unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
    }

    #[test]
    fn missing_home_names_node_and_kind() {
        let err =
            SystemSpec::parse(r#"{"schedules": ["S"], "nodes": [{"name": "T", "kind": "root"}]}"#)
                .unwrap()
                .build()
                .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("\"T\"") && msg.contains("home"), "{msg}");
    }
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use compc_core::check;
    use compc_workload::random::{generate, GenParams, Shape};

    #[test]
    fn system_to_spec_to_system_preserves_verdicts() {
        for seed in 0..40 {
            let sys = generate(&GenParams {
                shape: Shape::General {
                    levels: 3,
                    scheds_per_level: 2,
                },
                roots: 4,
                ops_per_tx: (1, 3),
                conflict_density: 0.5,
                sequential_tx_prob: 0.7,
                client_input_prob: 0.3,
                strong_input_prob: 0.3,
                sound_abstractions: false,
                seed,
            });
            let spec = SystemSpec::from_system(&sys);
            let rebuilt = spec
                .build()
                .unwrap_or_else(|e| panic!("seed {seed}: extracted spec must rebuild: {e}"));
            assert_eq!(sys.node_count(), rebuilt.node_count());
            assert_eq!(sys.schedule_count(), rebuilt.schedule_count());
            assert_eq!(
                check(&sys).is_correct(),
                check(&rebuilt).is_correct(),
                "seed {seed}: verdicts must survive the spec round trip"
            );
        }
    }

    #[test]
    fn duplicate_names_get_disambiguated() {
        use compc_model::SystemBuilder;
        let mut b = SystemBuilder::new();
        let s = b.schedule("S");
        let t1 = b.root("T", s);
        let t2 = b.root("T", s); // same display name
        b.leaf("o", t1);
        b.leaf("o", t2);
        let sys = b.build().unwrap();
        let spec = SystemSpec::from_system(&sys);
        let names: std::collections::BTreeSet<&String> =
            spec.nodes.iter().map(|n| &n.name).collect();
        assert_eq!(names.len(), spec.nodes.len());
        assert!(spec.build().is_ok());
    }
}

#[cfg(test)]
mod hardening_tests {
    use super::*;

    #[test]
    fn leaf_as_parent_is_a_typed_error_not_a_panic() {
        let spec = SystemSpec::parse(
            r#"{
                "schedules": ["S"],
                "nodes": [
                    {"name": "T", "kind": "root", "home": "S"},
                    {"name": "o", "kind": "leaf", "parent": "T"},
                    {"name": "x", "kind": "leaf", "parent": "o"}
                ]
            }"#,
        )
        .unwrap();
        assert!(matches!(spec.build(), Err(SpecError::BadNode(_))));
    }
}
