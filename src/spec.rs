//! A JSON-friendly description of composite systems.
//!
//! [`SystemSpec`] lets executions be written down (or logged by an external
//! component system) as plain data and fed to the checker without writing
//! Rust — the `compc-check` CLI consumes exactly this format:
//!
//! ```json
//! {
//!   "schedules": ["middleware", "db"],
//!   "nodes": [
//!     { "name": "T1", "kind": "root", "home": "middleware" },
//!     { "name": "u1", "kind": "subtx", "parent": "T1", "home": "db" },
//!     { "name": "r1", "kind": "leaf", "parent": "u1" }
//!   ],
//!   "conflicts": [["r1", "r2"]],
//!   "output_weak": [["r1", "r2"]],
//!   "auto_propagate": true
//! }
//! ```
//!
//! Node order matters only in that parents must be declared before their
//! children. All relations refer to nodes by name.

use compc_model::{CompositeSystem, ModelError, NodeId, SystemBuilder};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One node of the computational forest.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct NodeSpec {
    /// Unique display name.
    pub name: String,
    /// `"root"`, `"subtx"` or `"leaf"`.
    pub kind: String,
    /// Required for `subtx` and `leaf`: the parent transaction's name.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent: Option<String>,
    /// Required for `root` and `subtx`: the home schedule's name.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub home: Option<String>,
}

/// A whole composite system as declarative data.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct SystemSpec {
    /// Schedule names (components).
    pub schedules: Vec<String>,
    /// The forest, parents before children.
    pub nodes: Vec<NodeSpec>,
    /// Conflicting operation pairs (per the pair's common schedule).
    #[serde(default)]
    pub conflicts: Vec<(String, String)>,
    /// Weak output-order pairs `a ≺_S b`.
    #[serde(default)]
    pub output_weak: Vec<(String, String)>,
    /// Strong output-order pairs `a ≪_S b`.
    #[serde(default)]
    pub output_strong: Vec<(String, String)>,
    /// Weak input-order pairs `t → t'`.
    #[serde(default)]
    pub input_weak: Vec<(String, String)>,
    /// Strong input-order pairs `t →→ t'`.
    #[serde(default)]
    pub input_strong: Vec<(String, String)>,
    /// Weak intra-transaction order pairs `o ≺_t o'`.
    #[serde(default)]
    pub tx_weak: Vec<(String, String)>,
    /// Strong intra-transaction order pairs `o ≪_t o'`.
    #[serde(default)]
    pub tx_strong: Vec<(String, String)>,
    /// Apply Definition 4.7 automatically after loading (recommended).
    #[serde(default = "default_true")]
    pub auto_propagate: bool,
}

fn default_true() -> bool {
    true
}

/// Errors when materializing a [`SystemSpec`].
#[derive(Debug)]
pub enum SpecError {
    /// A name was referenced but never declared.
    UnknownName(String),
    /// A name was declared twice.
    DuplicateName(String),
    /// A node's kind/parent/home combination is inconsistent.
    BadNode(String),
    /// The resulting system violates the model.
    Model(ModelError),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownName(n) => write!(f, "unknown name: {n}"),
            SpecError::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            SpecError::BadNode(n) => write!(f, "inconsistent node declaration: {n}"),
            SpecError::Model(e) => write!(f, "model violation: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ModelError> for SpecError {
    fn from(e: ModelError) -> Self {
        SpecError::Model(e)
    }
}

impl SystemSpec {
    /// Builds and validates the composite system this spec describes.
    pub fn build(&self) -> Result<CompositeSystem, SpecError> {
        let mut b = SystemBuilder::new();
        let mut scheds = BTreeMap::new();
        for name in &self.schedules {
            if scheds.insert(name.clone(), b.schedule(name.clone())).is_some() {
                return Err(SpecError::DuplicateName(name.clone()));
            }
        }
        let mut nodes: BTreeMap<String, NodeId> = BTreeMap::new();
        let mut is_tx: BTreeMap<String, bool> = BTreeMap::new();
        for n in &self.nodes {
            // The builder panics (by contract) when a leaf is used as a
            // parent; the data layer must turn that into a typed error.
            if let Some(parent) = &n.parent {
                if is_tx.get(parent).copied() == Some(false) {
                    return Err(SpecError::BadNode(format!(
                        "{}: parent {parent} is a leaf",
                        n.name
                    )));
                }
            }
            let id = match n.kind.as_str() {
                "root" => {
                    let home = n
                        .home
                        .as_ref()
                        .ok_or_else(|| SpecError::BadNode(n.name.clone()))?;
                    let home = *scheds
                        .get(home)
                        .ok_or_else(|| SpecError::UnknownName(home.clone()))?;
                    b.root(n.name.clone(), home)
                }
                "subtx" => {
                    let parent = self.lookup(&nodes, n.parent.as_deref())?;
                    let home = n
                        .home
                        .as_ref()
                        .ok_or_else(|| SpecError::BadNode(n.name.clone()))?;
                    let home = *scheds
                        .get(home)
                        .ok_or_else(|| SpecError::UnknownName(home.clone()))?;
                    b.subtx(n.name.clone(), parent, home)
                }
                "leaf" => {
                    let parent = self.lookup(&nodes, n.parent.as_deref())?;
                    b.leaf(n.name.clone(), parent)
                }
                _ => return Err(SpecError::BadNode(n.name.clone())),
            };
            if nodes.insert(n.name.clone(), id).is_some() {
                return Err(SpecError::DuplicateName(n.name.clone()));
            }
            is_tx.insert(n.name.clone(), n.kind != "leaf");
        }
        let look = |nodes: &BTreeMap<String, NodeId>, name: &String| {
            nodes
                .get(name)
                .copied()
                .ok_or_else(|| SpecError::UnknownName(name.clone()))
        };
        for (a, c) in &self.conflicts {
            b.conflict(look(&nodes, a)?, look(&nodes, c)?)?;
        }
        for (a, c) in &self.tx_weak {
            b.tx_weak_order(look(&nodes, a)?, look(&nodes, c)?)?;
        }
        for (a, c) in &self.tx_strong {
            b.tx_strong_order(look(&nodes, a)?, look(&nodes, c)?)?;
        }
        for (a, c) in &self.output_weak {
            b.output_weak(look(&nodes, a)?, look(&nodes, c)?)?;
        }
        for (a, c) in &self.output_strong {
            b.output_strong(look(&nodes, a)?, look(&nodes, c)?)?;
        }
        for (a, c) in &self.input_weak {
            b.input_weak(look(&nodes, a)?, look(&nodes, c)?)?;
        }
        for (a, c) in &self.input_strong {
            b.input_strong(look(&nodes, a)?, look(&nodes, c)?)?;
        }
        if self.auto_propagate {
            b.propagate_orders()?;
        }
        Ok(b.build()?)
    }

    fn lookup(
        &self,
        nodes: &BTreeMap<String, NodeId>,
        name: Option<&str>,
    ) -> Result<NodeId, SpecError> {
        let name = name.ok_or_else(|| SpecError::BadNode("missing parent".into()))?;
        nodes
            .get(name)
            .copied()
            .ok_or_else(|| SpecError::UnknownName(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compc_core::check;

    fn transfer_spec() -> SystemSpec {
        serde_json::from_str(
            r#"{
                "schedules": ["mw", "db"],
                "nodes": [
                    {"name": "T1", "kind": "root", "home": "mw"},
                    {"name": "T2", "kind": "root", "home": "mw"},
                    {"name": "u1", "kind": "subtx", "parent": "T1", "home": "db"},
                    {"name": "u2", "kind": "subtx", "parent": "T2", "home": "db"},
                    {"name": "w1", "kind": "leaf", "parent": "u1"},
                    {"name": "w2", "kind": "leaf", "parent": "u2"}
                ],
                "conflicts": [["w1", "w2"]],
                "output_weak": [["w1", "w2"]]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn json_spec_builds_and_checks() {
        let sys = transfer_spec().build().unwrap();
        assert_eq!(sys.schedule_count(), 2);
        assert_eq!(sys.order(), 2);
        assert!(check(&sys).is_correct());
    }

    #[test]
    fn unknown_names_rejected() {
        let mut spec = transfer_spec();
        spec.conflicts.push(("w1".into(), "nope".into()));
        assert!(matches!(spec.build(), Err(SpecError::UnknownName(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut spec = transfer_spec();
        spec.nodes.push(NodeSpec {
            name: "T1".into(),
            kind: "root".into(),
            parent: None,
            home: Some("mw".into()),
        });
        assert!(matches!(spec.build(), Err(SpecError::DuplicateName(_))));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut spec = transfer_spec();
        spec.nodes[0].kind = "banana".into();
        assert!(matches!(spec.build(), Err(SpecError::BadNode(_))));
    }

    #[test]
    fn model_violations_surface() {
        let mut spec = transfer_spec();
        // A second conflicting pair left unordered breaks axiom 1c.
        spec.output_weak.clear();
        assert!(matches!(spec.build(), Err(SpecError::Model(_))));
    }

    #[test]
    fn roundtrips_through_json() {
        let spec = transfer_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SystemSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}

impl SystemSpec {
    /// Extracts a spec from an existing system — the reverse of
    /// [`SystemSpec::build`]. Output orders are emitted as covering pairs
    /// (the transitive reduction), which rebuild the same closures. If node
    /// names are not unique, every name is disambiguated with `#<id>`.
    pub fn from_system(sys: &CompositeSystem) -> SystemSpec {
        use std::collections::BTreeSet;
        let names: Vec<String> = {
            let raw: Vec<&str> = sys.nodes().map(|n| n.name.as_str()).collect();
            let unique: BTreeSet<&str> = raw.iter().copied().collect();
            if unique.len() == raw.len() {
                raw.into_iter().map(str::to_string).collect()
            } else {
                sys.nodes()
                    .map(|n| format!("{}#{}", n.name, n.id.0))
                    .collect()
            }
        };
        let name = |n: NodeId| names[n.index()].clone();
        let mut spec = SystemSpec {
            schedules: sys.schedules().map(|s| s.name.clone()).collect(),
            auto_propagate: false,
            ..SystemSpec::default()
        };
        for info in sys.nodes() {
            spec.nodes.push(NodeSpec {
                name: name(info.id),
                kind: match (info.parent, info.home) {
                    (None, _) => "root",
                    (Some(_), Some(_)) => "subtx",
                    (Some(_), None) => "leaf",
                }
                .into(),
                parent: info.parent.map(name),
                home: info
                    .home
                    .map(|h| sys.schedule(h).name.clone()),
            });
        }
        let pairs = |rel: &compc_graph::PartialOrderRel| -> Vec<(String, String)> {
            rel.covering_pairs()
                .into_iter()
                .map(|(a, b)| (names[a].clone(), names[b].clone()))
                .collect()
        };
        for s in sys.schedules() {
            for (a, b) in s.conflicts.iter() {
                spec.conflicts.push((name(a), name(b)));
            }
            spec.output_weak.extend(pairs(s.output.weak()));
            spec.output_strong.extend(pairs(s.output.strong()));
            spec.input_weak.extend(pairs(s.input.weak()));
            spec.input_strong.extend(pairs(s.input.strong()));
            for t in &s.transactions {
                spec.tx_weak.extend(pairs(t.intra.weak()));
                spec.tx_strong.extend(pairs(t.intra.strong()));
            }
        }
        spec
    }
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use compc_core::check;
    use compc_workload::random::{generate, GenParams, Shape};

    #[test]
    fn system_to_spec_to_system_preserves_verdicts() {
        for seed in 0..40 {
            let sys = generate(&GenParams {
                shape: Shape::General {
                    levels: 3,
                    scheds_per_level: 2,
                },
                roots: 4,
                ops_per_tx: (1, 3),
                conflict_density: 0.5,
                sequential_tx_prob: 0.7,
                client_input_prob: 0.3,
                strong_input_prob: 0.3,
                sound_abstractions: false,
                seed,
            });
            let spec = SystemSpec::from_system(&sys);
            let rebuilt = spec.build().unwrap_or_else(|e| {
                panic!("seed {seed}: extracted spec must rebuild: {e}")
            });
            assert_eq!(sys.node_count(), rebuilt.node_count());
            assert_eq!(sys.schedule_count(), rebuilt.schedule_count());
            assert_eq!(
                check(&sys).is_correct(),
                check(&rebuilt).is_correct(),
                "seed {seed}: verdicts must survive the spec round trip"
            );
        }
    }

    #[test]
    fn duplicate_names_get_disambiguated() {
        use compc_model::SystemBuilder;
        let mut b = SystemBuilder::new();
        let s = b.schedule("S");
        let t1 = b.root("T", s);
        let t2 = b.root("T", s); // same display name
        b.leaf("o", t1);
        b.leaf("o", t2);
        let sys = b.build().unwrap();
        let spec = SystemSpec::from_system(&sys);
        let names: std::collections::BTreeSet<&String> =
            spec.nodes.iter().map(|n| &n.name).collect();
        assert_eq!(names.len(), spec.nodes.len());
        assert!(spec.build().is_ok());
    }
}

#[cfg(test)]
mod hardening_tests {
    use super::*;

    #[test]
    fn leaf_as_parent_is_a_typed_error_not_a_panic() {
        let spec: SystemSpec = serde_json::from_str(
            r#"{
                "schedules": ["S"],
                "nodes": [
                    {"name": "T", "kind": "root", "home": "S"},
                    {"name": "o", "kind": "leaf", "parent": "T"},
                    {"name": "x", "kind": "leaf", "parent": "o"}
                ]
            }"#,
        )
        .unwrap();
        assert!(matches!(spec.build(), Err(SpecError::BadNode(_))));
    }
}
