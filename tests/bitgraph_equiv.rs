//! Differential equivalence of the dense bitset relation kernels.
//!
//! `BitGraph`/`BitOrderRel` are drop-in word-parallel replacements for the
//! BTree-backed `DiGraph` closure and `PartialOrderRel`. These tests pin the
//! replacement down pair-for-pair on random DAGs and cyclic graphs — closure,
//! reachability, incremental insert (including the exact `OrderError` on
//! every failing step), and `try_union` — plus the crossover boundary sizes
//! 63/64/65 where the row layout changes word count, and end-to-end verdict
//! equivalence of the checker across forced-sparse, forced-dense, and auto
//! backends on random systems and the paper's Figure 1–4 examples.

use compc::core::{check, Backend, CheckOptions, Checker, Verdict};
use compc::graph::{
    reachable_from, transitive_closure, BitGraph, BitOrderRel, ChunkedBitGraph, DiGraph,
    PartialOrderRel,
};
use compc::workload::figures::{figure1, figure2, figure3_incorrect, figure4_correct};
use compc::workload::random::{generate, GenParams, Shape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random graph over `n` nodes: forward-only edges when `dag` (acyclic by
/// construction), any direction otherwise (almost surely cyclic when dense).
fn random_graph(n: usize, avg_degree: f64, dag: bool, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = (avg_degree / n.max(1) as f64).min(1.0);
    let mut g = DiGraph::with_nodes(n);
    for u in 0..n {
        let lo = if dag { u + 1 } else { 0 };
        for v in lo..n {
            if u != v && rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Node counts that matter: small fronts, the 63/64/65 word-layout boundary,
/// and a couple of multi-word sizes.
fn arb_nodes() -> impl Strategy<Value = usize> {
    prop_oneof![
        2usize..=20,
        Just(63usize),
        Just(64usize),
        Just(65usize),
        Just(100usize),
        Just(130usize),
    ]
}

/// Everything observable about a verdict, as comparable data.
fn fingerprint(v: &Verdict) -> String {
    match v {
        Verdict::Correct(p) => format!("correct|witness={:?}", p.serial_witness),
        Verdict::Incorrect(c) => format!(
            "incorrect|level={}|phase={:?}|cycle={:?}",
            c.level, c.phase, c.cycle
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Dense closure (topo sweep on DAGs, Warshall otherwise) equals the
    /// sparse per-source DFS closure, edge for edge.
    #[test]
    fn closure_identical_across_backends(
        seed in 0u64..100_000,
        n in arb_nodes(),
        degree in 1u8..=6,
        dag in proptest::bool::ANY,
    ) {
        let g = random_graph(n, degree as f64, dag, seed);
        let sparse = transitive_closure(&g);
        let mut bits = BitGraph::from_digraph(&g);
        bits.close_transitively();
        prop_assert_eq!(&bits.to_digraph(), &sparse, "n={} dag={}", n, dag);
        // And via the reusable-buffer load path the engine scratch uses.
        let mut reused = BitGraph::new();
        reused.load_from(&g);
        reused.close_transitively();
        prop_assert_eq!(&reused.to_digraph(), &sparse);
    }

    /// Per-source bitset BFS reaches exactly the nodes the sparse DFS does.
    #[test]
    fn reachability_identical_across_backends(
        seed in 0u64..100_000,
        n in arb_nodes(),
        degree in 1u8..=6,
    ) {
        let g = random_graph(n, degree as f64, false, seed);
        let bits = BitGraph::from_digraph(&g);
        for u in 0..n {
            prop_assert_eq!(
                bits.reachable_from(u),
                reachable_from(&g, u),
                "source {}", u
            );
        }
    }

    /// Inserting the same pair sequence into both order representations
    /// gives step-identical results: the same `Ok`/`Err` — with the *same*
    /// error value — at every step, and identical closed pair sets at the
    /// end. Includes reflexive and contradiction error paths (the pair
    /// stream is unfiltered, so cycles and self-pairs occur routinely).
    #[test]
    fn order_insert_step_identical(
        seed in 0u64..100_000,
        n in 2usize..=70,
        pairs in 1usize..=120,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sparse = PartialOrderRel::with_elements(n);
        let mut dense = BitOrderRel::with_elements(n);
        for step in 0..pairs {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            prop_assert_eq!(
                dense.insert(a, b),
                sparse.insert(a, b),
                "step {} inserting ({}, {})", step, a, b
            );
        }
        prop_assert_eq!(
            dense.pairs().collect::<Vec<_>>(),
            sparse.pairs().collect::<Vec<_>>()
        );
        prop_assert_eq!(dense.pair_count(), sparse.pair_count());
    }

    /// `try_union`, `contains`, and `restricted_to` agree across backends,
    /// including the exact error when the union is contradictory.
    #[test]
    fn union_contains_restrict_identical(
        seed in 0u64..100_000,
        n in 2usize..=70,
        pairs in 1usize..=40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let grow = |rng: &mut StdRng| {
            let mut rel = PartialOrderRel::with_elements(n);
            for _ in 0..pairs {
                let _ = rel.insert(rng.gen_range(0..n), rng.gen_range(0..n));
            }
            rel
        };
        let s1 = grow(&mut rng);
        let s2 = grow(&mut rng);
        let d1 = BitOrderRel::from_partial_order(&s1);
        let d2 = BitOrderRel::from_partial_order(&s2);

        prop_assert_eq!(d1.contains(&d2), s1.contains(&s2));
        prop_assert_eq!(d2.contains(&d1), s2.contains(&s1));

        match (s1.try_union(&s2), d1.try_union(&d2)) {
            (Ok(su), Ok(du)) => prop_assert_eq!(
                du.pairs().collect::<Vec<_>>(),
                su.pairs().collect::<Vec<_>>()
            ),
            (Err(se), Err(de)) => prop_assert_eq!(de, se, "union error must match exactly"),
            (s, d) => prop_assert!(false, "union outcome diverged: sparse={:?} dense={:?}",
                s.map(|u| u.pair_count()), d.map(|u| u.pair_count())),
        }

        let keep: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.5)).collect();
        prop_assert_eq!(
            d1.restricted_to(&keep).pairs().collect::<Vec<_>>(),
            s1.restricted_to(&keep).pairs().collect::<Vec<_>>()
        );
    }

    /// End to end: the checker's verdict is bit-identical whether closures
    /// run forced-sparse, forced-dense, forced-compressed, or on the
    /// default crossovers.
    #[test]
    fn checker_verdict_identical_across_backends(
        seed in 0u64..100_000,
        roots in 2usize..=6,
        density in 0u8..=90,
    ) {
        let sys = generate(&GenParams {
            shape: Shape::General { levels: 3, scheds_per_level: 2 },
            roots,
            ops_per_tx: (1, 3),
            conflict_density: density as f64 / 100.0,
            sequential_tx_prob: 0.7,
            client_input_prob: 0.0,
            strong_input_prob: 0.0,
            sound_abstractions: false,
            seed,
        });
        let baseline = fingerprint(&check(&sys));
        for backend in [
            Backend::Crossover(0),
            Backend::Crossover(64),
            Backend::Crossover(usize::MAX),
            Backend::Compressed,
        ] {
            let v = Checker::with_options(CheckOptions::new().backend(backend)).check(&sys);
            prop_assert_eq!(
                &fingerprint(&v),
                &baseline,
                "verdict diverged at backend={}", backend
            );
        }
    }

    /// The SCC-condensed compressed closure is bit-identical to the sparse
    /// DFS closure and the dense bitset closure on random DAGs and cyclic
    /// graphs — the full cross-backend triangle, per edge.
    #[test]
    fn condensed_closure_identical_across_backends(
        seed in 0u64..100_000,
        n in arb_nodes(),
        degree in 1u8..=6,
        dag in proptest::bool::ANY,
    ) {
        let g = random_graph(n, degree as f64, dag, seed);
        let sparse = transitive_closure(&g);
        let mut dense = BitGraph::from_digraph(&g);
        dense.close_transitively();
        let condensed = ChunkedBitGraph::from_digraph(&g).condensed_closure();
        prop_assert_eq!(&condensed.to_digraph(), &sparse, "n={} dag={}", n, dag);
        prop_assert_eq!(&dense.to_digraph(), &sparse);
        prop_assert_eq!(condensed.edge_count(), sparse.edge_count());
        // Row expansion through the partitionable range contract agrees too.
        let words = condensed.words_per_row();
        let mut rows = vec![0u64; n * words];
        condensed.rows_range(0, n, &mut rows);
        prop_assert_eq!(&BitGraph::from_rows(n, rows).to_digraph(), &sparse);
        // And the chunked graph's own BFS reachability matches the closure.
        let chunked = ChunkedBitGraph::from_digraph(&g);
        let mut row = vec![0u64; words];
        for u in 0..n {
            chunked.reachable_into(u, &mut row);
            let reached: Vec<usize> = (0..n).filter(|&v| row[v / 64] >> (v % 64) & 1 == 1).collect();
            prop_assert_eq!(reached, sparse.successors(u).collect::<Vec<_>>(), "source {}", u);
        }
    }

    /// Extreme component structure: one giant cycle (a single SCC whose
    /// closure is the complete relation), all singletons (a DAG chain), and
    /// a mixed graph gluing both — the condensed representation must agree
    /// with the dense closure on each.
    #[test]
    fn condensed_closure_extreme_components(
        n in 2usize..=130,
        shape in 0u8..=2,
    ) {
        let mut g = DiGraph::with_nodes(n);
        match shape {
            0 => {
                // One giant cycle: closure is all n² pairs.
                for i in 0..n {
                    g.add_edge(i, (i + 1) % n);
                }
            }
            1 => {
                // All singletons on a chain: closure is the strict order.
                for i in 0..n - 1 {
                    g.add_edge(i, i + 1);
                }
            }
            _ => {
                // Mixed: a cycle over the first half feeding a chain tail.
                let half = (n / 2).max(1);
                for i in 0..half {
                    g.add_edge(i, (i + 1) % half);
                }
                for i in half..n - 1 {
                    g.add_edge(i, i + 1);
                }
                if half < n {
                    g.add_edge(0, half);
                }
            }
        }
        let sparse = transitive_closure(&g);
        let condensed = ChunkedBitGraph::from_digraph(&g).condensed_closure();
        prop_assert_eq!(&condensed.to_digraph(), &sparse, "n={} shape={}", n, shape);
        if shape == 0 {
            prop_assert_eq!(condensed.component_count(), 1);
            prop_assert_eq!(condensed.edge_count(), n * n);
        }
        let mut dense = BitGraph::from_digraph(&g);
        dense.close_transitively();
        prop_assert_eq!(&dense.to_digraph(), &sparse);
    }
}

/// The word-layout boundary, exhaustively: complete DAGs and complete
/// digraphs (every off-diagonal edge) at 63, 64, and 65 nodes, where rows
/// span exactly one word, exactly fill one word, and spill into a second.
#[test]
fn crossover_boundary_sizes_match_exactly() {
    for n in [63usize, 64, 65] {
        for dag in [true, false] {
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                let lo = if dag { u + 1 } else { 0 };
                for v in lo..n {
                    if u != v {
                        g.add_edge(u, v);
                    }
                }
            }
            let sparse = transitive_closure(&g);
            let mut bits = BitGraph::from_digraph(&g);
            bits.close_transitively();
            assert_eq!(bits.to_digraph(), sparse, "n={n} dag={dag}");
            assert_eq!(bits.edge_count(), sparse.edge_count(), "n={n} dag={dag}");
        }
    }
}

/// The paper's worked examples decide identically on every backend.
#[test]
fn figure_examples_verdicts_unchanged_by_backend() {
    for (name, fig) in [
        ("figure1", figure1()),
        ("figure2", figure2()),
        ("figure3", figure3_incorrect()),
        ("figure4", figure4_correct()),
    ] {
        let baseline = fingerprint(&check(&fig.system));
        for backend in [
            Backend::Crossover(0),
            Backend::Crossover(64),
            Backend::Crossover(usize::MAX),
            Backend::Sparse,
            Backend::Dense,
            Backend::Compressed,
        ] {
            let v = Checker::with_options(CheckOptions::new().backend(backend)).check(&fig.system);
            assert_eq!(
                fingerprint(&v),
                baseline,
                "{name} verdict changed at backend={backend}"
            );
        }
    }
}

/// Growing an already-populated graph across a word-boundary size change
/// (one row word → two, two → three) must re-stride the old rows: a bit at
/// column 62 lives in word 0 of a 1-word row but still word 0 of a 2-word
/// row *of different stride*. These pin the `load_from` reuse path — the
/// original boundary tests only covered fresh construction.
#[test]
fn grow_across_word_boundary_then_query() {
    for (small, big) in [
        (63usize, 64usize),
        (63, 65),
        (64, 65),
        (127, 128),
        (127, 129),
        (128, 129),
    ] {
        // A small graph with bits in the last word, near the boundary.
        let mut g_small = DiGraph::with_nodes(small);
        g_small.add_edge(0, small - 1);
        g_small.add_edge(small - 1, small - 2);
        let mut bits = BitGraph::from_digraph(&g_small);
        bits.close_transitively();
        assert!(bits.has_edge(0, small - 2), "small={small} closure");

        // Reuse the same buffer for a bigger graph whose word count differs.
        let mut g_big = DiGraph::with_nodes(big);
        g_big.add_edge(0, big - 1);
        g_big.add_edge(big - 1, 1);
        g_big.add_edge(1, 0);
        bits.load_from(&g_big);
        assert_eq!(bits.node_count(), big);
        assert_eq!(bits.edge_count(), 3, "{small}->{big} reload edge count");
        assert!(!bits.has_edge(0, small - 2), "stale bit survived regrow");
        bits.close_transitively();
        assert_eq!(
            bits.to_digraph(),
            transitive_closure(&g_big),
            "{small}->{big} closure after regrow"
        );

        // And shrinking back must not leave stale high-word bits either.
        bits.load_from(&g_small);
        assert_eq!(bits.node_count(), small);
        assert_eq!(bits.edge_count(), 2, "{big}->{small} shrink edge count");

        // Same boundary crossing for the order relation's `ensure_element`
        // relayout (insert auto-grows the element universe).
        let mut sparse_rel = PartialOrderRel::with_elements(small);
        let mut dense_rel = BitOrderRel::with_elements(small);
        for (a, b) in [(0, small - 1), (small - 1, small - 2)] {
            assert_eq!(dense_rel.insert(a, b), sparse_rel.insert(a, b));
        }
        for (a, b) in [(small - 2, big - 1), (big - 1, big - 2)] {
            assert_eq!(
                dense_rel.insert(a, b),
                sparse_rel.insert(a, b),
                "{small}->{big} grow-insert ({a}, {b})"
            );
        }
        assert_eq!(
            dense_rel.pairs().collect::<Vec<_>>(),
            sparse_rel.pairs().collect::<Vec<_>>(),
            "{small}->{big} pairs after ensure_element regrow"
        );
        assert!(dense_rel.lt(0, big - 2), "transitivity across the regrow");
    }

    // The chunked backend's reload path crosses the same boundaries.
    for (small, big) in [(63usize, 65usize), (127, 129)] {
        let mut g_small = DiGraph::with_nodes(small);
        g_small.add_edge(0, small - 1);
        let mut chunked = ChunkedBitGraph::from_digraph(&g_small);
        let mut g_big = DiGraph::with_nodes(big);
        g_big.add_edge(big - 1, 0);
        chunked.load_from(&g_big);
        assert_eq!(chunked.edge_count(), 1);
        assert!(!chunked.has_edge(0, small - 1), "stale chunked edge");
        assert!(chunked.has_edge(big - 1, 0));
    }
}

/// A release-build caller handing `reachable_into` a short buffer must get
/// a panic, not silent truncation (the guards were `debug_assert` once).
#[test]
#[should_panic(expected = "words_per_row")]
fn bitgraph_reachable_into_rejects_short_buffer() {
    let g = BitGraph::from_digraph(&DiGraph::with_nodes(100));
    let mut short = vec![0u64; 1];
    g.reachable_into(0, &mut short);
}

/// Same for the row-range extraction the parallel engine partitions with.
#[test]
#[should_panic(expected = "words_per_row")]
fn bitgraph_closure_rows_range_rejects_short_buffer() {
    let g = BitGraph::from_digraph(&DiGraph::with_nodes(100));
    let mut short = vec![0u64; 3];
    g.closure_rows_range(0, 10, &mut short);
}

/// An out-of-bounds row range must panic before any slicing happens.
#[test]
#[should_panic(expected = "out of bounds")]
fn bitgraph_closure_rows_range_rejects_bad_range() {
    let g = BitGraph::from_digraph(&DiGraph::with_nodes(10));
    let mut out = vec![0u64; 20];
    g.closure_rows_range(5, 25, &mut out);
}

/// `add_edge` with a target inside the trailing word but past `n` used to
/// set the bit silently, corrupting the "bits past n are zero" invariant
/// every word-parallel operation relies on. Now it panics like `u >= n`
/// always did.
#[test]
#[should_panic(expected = "out of range")]
fn bitgraph_add_edge_rejects_target_past_n_within_word() {
    let mut g = BitGraph::with_nodes(3);
    g.add_edge(0, 5);
}
