//! End-to-end tests for the `compc-check` binary: NDJSON corpus edge cases,
//! the `--trace`/`--stats`/`--explain` observability flags, and flag
//! validation — all through the real executable.

use compc::model::CompositeSystem;
use compc::spec::SystemSpec;
use std::path::PathBuf;
use std::process::{Command, Output};

/// A tiny correct system: two conflicting writes, serialized consistently.
fn correct_system(tag: &str) -> CompositeSystem {
    let mut b = compc::model::SystemBuilder::new();
    let s = b.schedule("db");
    let t1 = b.root(format!("T1{tag}"), s);
    let t2 = b.root(format!("T2{tag}"), s);
    let w1 = b.leaf("w1(x)", t1);
    let w2 = b.leaf("w2(x)", t2);
    b.conflict(w1, w2).unwrap();
    b.output_weak(w1, w2).unwrap();
    b.build().unwrap()
}

/// The classical lost update: not Comp-C.
fn incorrect_system() -> CompositeSystem {
    let mut b = compc::model::SystemBuilder::new();
    let s = b.schedule("db");
    let t1 = b.root("T1", s);
    let t2 = b.root("T2", s);
    let a1 = b.leaf("r1(x)", t1);
    let b1 = b.leaf("w1(y)", t1);
    let a2 = b.leaf("w2(x)", t2);
    let b2 = b.leaf("r2(y)", t2);
    b.conflict(a1, a2).unwrap();
    b.conflict(b1, b2).unwrap();
    b.output_weak(a1, a2).unwrap();
    b.output_weak(b2, b1).unwrap();
    b.build().unwrap()
}

fn spec_line(sys: &CompositeSystem) -> String {
    SystemSpec::from_system(sys).to_json().to_compact()
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_compc-check"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("compc-check runs")
}

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("compc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn figure3_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/figure3_incorrect.json"
    )
    .to_string()
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

#[test]
fn ndjson_corpus_tolerates_blank_lines_crlf_and_trailing_newline() {
    // Blank lines (including whitespace-only), CRLF endings, and a trailing
    // newline are all cosmetic; every spec line is still checked.
    let corpus = format!(
        "{}\r\n\r\n   \n{}\r\n{}\n",
        spec_line(&correct_system("a")),
        spec_line(&incorrect_system()),
        spec_line(&correct_system("b")),
    );
    let path = tmpfile("edge.ndjsonl.ndjson");
    std::fs::write(&path, corpus).unwrap();
    let out = run(&[path.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One system was incorrect, none invalid.
    assert_eq!(exit_code(&out), 1, "stdout: {stdout}");
    assert!(
        stdout.contains("3 systems (2 correct, 1 incorrect)"),
        "{stdout}"
    );
    // Labels point at the original line numbers (1, 4, 5).
    assert!(stdout.contains(":1: Comp-C"), "{stdout}");
    assert!(stdout.contains(":4: NOT Comp-C"), "{stdout}");
    assert!(stdout.contains(":5: Comp-C"), "{stdout}");
}

#[test]
fn ndjson_corpus_reports_invalid_line_but_checks_the_rest() {
    // An invalid spec mid-file exits 2, but the remaining lines are still
    // checked and reported.
    let corpus = format!(
        "{}\n{{\"version\":1,\"nope\":true}}\nnot even json\n{}\n",
        spec_line(&correct_system("a")),
        spec_line(&incorrect_system()),
    );
    let path = tmpfile("invalid-mid.ndjson");
    std::fs::write(&path, corpus).unwrap();
    let out = run(&[path.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(exit_code(&out), 2, "invalid input wins: {stdout}\n{stderr}");
    assert!(stdout.contains(":1: Comp-C"), "{stdout}");
    assert!(stdout.contains(":4: NOT Comp-C"), "{stdout}");
    assert!(
        stdout.contains("2 systems (1 correct, 1 incorrect)"),
        "{stdout}"
    );
    assert!(stderr.contains(":2:"), "invalid lines are named: {stderr}");
    assert!(stderr.contains(":3:"), "invalid lines are named: {stderr}");
    assert!(stderr.contains("2 input(s) were invalid"), "{stderr}");
}

#[test]
fn trace_emits_valid_ndjson_one_event_per_level() {
    let corpus = format!(
        "{}\n{}\n",
        spec_line(&correct_system("a")),
        spec_line(&incorrect_system())
    );
    let path = tmpfile("trace.ndjson");
    std::fs::write(&path, corpus).unwrap();
    let out = run(&[path.to_str().unwrap(), "--trace", "--jobs", "2"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut starts = 0;
    let mut levels = 0;
    let mut ends = 0;
    for line in stdout.lines().filter(|l| l.starts_with('{')) {
        let v = compc::json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON {line}: {e}"));
        let kind = v.get("event").and_then(|e| e.as_str()).expect("event kind");
        assert!(
            v.get("label").and_then(|l| l.as_str()).is_some(),
            "batch trace lines carry the item label: {line}"
        );
        match kind {
            "check_start" => starts += 1,
            "level" => {
                levels += 1;
                assert!(v.get("level").and_then(|x| x.as_u64()).is_some(), "{line}");
                assert!(v.get("elapsed_ns").is_some(), "{line}");
                assert!(v.get("front_before").is_some(), "{line}");
            }
            "check_end" => ends += 1,
            other => panic!("unexpected event kind {other}"),
        }
    }
    assert_eq!(starts, 2);
    assert_eq!(ends, 2);
    // Both systems are order-1: exactly one level event each.
    assert_eq!(levels, 2);
}

#[test]
fn single_mode_trace_and_stats_narrate_figure3() {
    let out = run(&[&figure3_path(), "--trace", "--stats"]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let level_events = stdout
        .lines()
        .filter(|l| l.starts_with('{'))
        .filter_map(|l| compc::json::parse(l).ok())
        .filter(|v| v.get("event").and_then(|e| e.as_str()) == Some("level"))
        .count();
    // Figure 3 fails at level 3: three level events (two ok, one failing).
    assert_eq!(level_events, 3, "{stdout}");
    assert!(
        stdout.contains("level time (ns):"),
        "--stats histograms: {stdout}"
    );
    assert!(stdout.contains("front sizes:"), "{stdout}");
}

#[test]
fn explain_names_failing_level_and_witness_cycle() {
    let out = run(&[&figure3_path(), "--explain"]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("failed at level 3 of 3"), "{stdout}");
    assert!(stdout.contains("witness cycle: T1 -> T2 -> T1"), "{stdout}");
    assert!(
        stdout.contains("minimal violating transaction set (2 of 3 roots): T1, T2"),
        "{stdout}"
    );
}

#[test]
fn batch_mode_honors_explain_per_item() {
    let corpus = format!(
        "{}\n{}\n",
        spec_line(&incorrect_system()),
        spec_line(&correct_system("a"))
    );
    let path = tmpfile("explain.ndjson");
    std::fs::write(&path, corpus).unwrap();
    let out = run(&[path.to_str().unwrap(), "--explain"]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("witness cycle:"), "{stdout}");
    assert!(stdout.contains("failed at level 1 of 1"), "{stdout}");
}

#[test]
fn jobs_flag_rejects_missing_and_negative_arguments() {
    for args in [
        vec![figure3_path(), "--jobs".to_string()],
        vec![figure3_path(), "--jobs".to_string(), "-3".to_string()],
        vec![figure3_path(), "--jobs".to_string(), "lots".to_string()],
        vec!["--jobs".to_string(), "2".to_string()], // jobs but no input
    ] {
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = run(&argv);
        assert_eq!(exit_code(&out), 2, "args {args:?} must be a usage error");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{stderr}");
    }
}

#[test]
fn version_and_help_exit_zero_and_document_exit_codes() {
    let out = run(&["--version"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("compc-check "), "{stdout}");

    let out = run(&["--help"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "exit codes:",
        "--deadline-ms",
        "--checkpoint",
        "not Comp-C",
        "exceeded --deadline-ms",
    ] {
        assert!(
            stdout.contains(needle),
            "--help mentions {needle}: {stdout}"
        );
    }
}

#[test]
fn zero_deadline_times_out_single_system_with_exit_3() {
    // A zero budget expires at the first level boundary — deterministic
    // timeout without depending on machine speed.
    let out = run(&[&figure3_path(), "--deadline-ms", "0"]);
    assert_eq!(exit_code(&out), 3);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TIMEOUT"), "{stdout}");
    assert!(stdout.contains("before level 1"), "{stdout}");
}

#[test]
fn zero_deadline_times_out_batch_with_exit_3() {
    let corpus = format!(
        "{}\n{}\n{}\n",
        spec_line(&correct_system("a")),
        spec_line(&incorrect_system()),
        spec_line(&correct_system("b")),
    );
    let path = tmpfile("deadline.ndjson");
    std::fs::write(&path, corpus).unwrap();
    let out = run(&[path.to_str().unwrap(), "--deadline-ms", "0"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(exit_code(&out), 3, "{stdout}\n{stderr}");
    assert_eq!(stdout.matches("TIMEOUT").count(), 3, "{stdout}");
    assert!(stdout.contains("3 timeouts"), "{stdout}");
    assert!(stderr.contains("3 check(s) timed out"), "{stderr}");
    // A generous budget checks everything; the violation wins over 0.
    let out = run(&[path.to_str().unwrap(), "--deadline-ms", "60000"]);
    assert_eq!(exit_code(&out), 1);
}

#[test]
fn deadline_flag_rejects_missing_and_bad_arguments() {
    for args in [
        vec![figure3_path(), "--deadline-ms".to_string()],
        vec![
            figure3_path(),
            "--deadline-ms".to_string(),
            "soon".to_string(),
        ],
    ] {
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = run(&argv);
        assert_eq!(exit_code(&out), 2, "args {args:?} must be a usage error");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }
}

#[test]
fn checkpoint_resumes_only_unfinished_items() {
    let corpus = format!(
        "{}\n{}\n{}\n",
        spec_line(&correct_system("a")),
        spec_line(&incorrect_system()),
        spec_line(&correct_system("b")),
    );
    let corpus_path = tmpfile("resume.ndjson");
    std::fs::write(&corpus_path, corpus).unwrap();
    let cp = tmpfile("resume.checkpoint");
    let _ = std::fs::remove_file(&cp);

    // Simulate an interrupted run: the first two items finished (one was a
    // violation), the third did not make it into the checkpoint.
    std::fs::write(
        &cp,
        format!("ok\t{0}:1\nviolation\t{0}:2\n", corpus_path.display()),
    )
    .unwrap();

    let out = run(&[
        corpus_path.to_str().unwrap(),
        "--checkpoint",
        cp.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Only line 3 is rechecked; the recorded violation still drives exit 1.
    assert_eq!(exit_code(&out), 1, "{stdout}\n{stderr}");
    assert!(!stdout.contains(":1: "), "line 1 is skipped: {stdout}");
    assert!(!stdout.contains(":2: "), "line 2 is skipped: {stdout}");
    assert!(stdout.contains(":3: Comp-C"), "{stdout}");
    assert!(
        stdout.contains("1 systems (1 correct, 0 incorrect)"),
        "{stdout}"
    );
    assert!(
        stderr.contains("2 of 3 item(s) already recorded"),
        "{stderr}"
    );
    assert!(stderr.contains("1 prior violation(s)"), "{stderr}");

    // The finished item was appended; a third run has nothing left to do
    // but still reports the recorded violation through the exit code.
    let recorded = std::fs::read_to_string(&cp).unwrap();
    assert!(
        recorded.contains(&format!("ok\t{}:3", corpus_path.display())),
        "{recorded}"
    );
    let out = run(&[
        corpus_path.to_str().unwrap(),
        "--checkpoint",
        cp.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("nothing left to check"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn checkpoint_records_a_fresh_run_and_skips_everything_on_rerun() {
    let corpus = format!(
        "{}\n{}\n",
        spec_line(&correct_system("a")),
        spec_line(&correct_system("b")),
    );
    let corpus_path = tmpfile("fresh.ndjson");
    std::fs::write(&corpus_path, corpus).unwrap();
    let cp = tmpfile("fresh.checkpoint");
    let _ = std::fs::remove_file(&cp);

    let out = run(&[
        corpus_path.to_str().unwrap(),
        "--checkpoint",
        cp.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0);
    let recorded = std::fs::read_to_string(&cp).unwrap();
    assert_eq!(recorded.lines().count(), 2, "{recorded}");
    assert!(
        recorded.lines().all(|l| l.starts_with("ok\t")),
        "{recorded}"
    );

    let out = run(&[
        corpus_path.to_str().unwrap(),
        "--checkpoint",
        cp.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("nothing left to check"),
        "everything was recorded"
    );
}

#[test]
fn timed_out_items_are_not_checkpointed_and_rerun_on_resume() {
    let corpus = format!("{}\n", spec_line(&correct_system("a")));
    let corpus_path = tmpfile("timeout-cp.ndjson");
    std::fs::write(&corpus_path, corpus).unwrap();
    let cp = tmpfile("timeout-cp.checkpoint");
    let _ = std::fs::remove_file(&cp);

    // Everything times out: the checkpoint stays empty.
    let out = run(&[
        corpus_path.to_str().unwrap(),
        "--checkpoint",
        cp.to_str().unwrap(),
        "--deadline-ms",
        "0",
    ]);
    assert_eq!(exit_code(&out), 3);
    let recorded = std::fs::read_to_string(&cp).unwrap_or_default();
    assert!(
        recorded.trim().is_empty(),
        "timeouts are not recorded: {recorded}"
    );

    // Without the deadline the item runs again and is recorded.
    let out = run(&[
        corpus_path.to_str().unwrap(),
        "--checkpoint",
        cp.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0);
    let recorded = std::fs::read_to_string(&cp).unwrap();
    assert!(recorded.starts_with("ok\t"), "{recorded}");
}

#[test]
fn checkpoint_survives_a_timed_out_run_and_resumes_the_rest() {
    // An interrupted-then-timed-out corpus run: item 1 was recorded by an
    // earlier run; the next run times out on everything left (exit 3)
    // without touching the checkpoint; the final run, restarted with a
    // workable budget and the same flag, checks exactly the unrecorded
    // items and folds the recorded state into the exit code.
    let corpus = format!(
        "{}\n{}\n{}\n",
        spec_line(&correct_system("a")),
        spec_line(&incorrect_system()),
        spec_line(&correct_system("b")),
    );
    let corpus_path = tmpfile("timeout-resume.ndjson");
    std::fs::write(&corpus_path, corpus).unwrap();
    let cp = tmpfile("timeout-resume.checkpoint");
    let _ = std::fs::remove_file(&cp);
    std::fs::write(&cp, format!("ok\t{}:1\n", corpus_path.display())).unwrap();

    let out = run(&[
        corpus_path.to_str().unwrap(),
        "--checkpoint",
        cp.to_str().unwrap(),
        "--deadline-ms",
        "0",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(exit_code(&out), 3, "{stdout}\n{stderr}");
    assert!(!stdout.contains(":1: "), "line 1 stays skipped: {stdout}");
    assert_eq!(stdout.matches("TIMEOUT").count(), 2, "{stdout}");
    let recorded = std::fs::read_to_string(&cp).unwrap();
    assert_eq!(
        recorded.lines().count(),
        1,
        "timeouts must not be recorded: {recorded}"
    );

    let out = run(&[
        corpus_path.to_str().unwrap(),
        "--checkpoint",
        cp.to_str().unwrap(),
        "--deadline-ms",
        "60000",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1, "the violation on line 2 wins: {stdout}");
    assert!(!stdout.contains(":1: "), "{stdout}");
    assert!(stdout.contains(":2: NOT Comp-C"), "{stdout}");
    assert!(stdout.contains(":3: Comp-C"), "{stdout}");
    let recorded = std::fs::read_to_string(&cp).unwrap();
    assert!(
        recorded.contains(&format!("violation\t{}:2", corpus_path.display())),
        "{recorded}"
    );
    assert!(
        recorded.contains(&format!("ok\t{}:3", corpus_path.display())),
        "{recorded}"
    );
}

#[test]
fn dense_and_sparse_backends_agree_on_batch_verdicts() {
    let corpus = format!(
        "{}\n{}\n{}\n",
        spec_line(&correct_system("a")),
        spec_line(&incorrect_system()),
        spec_line(&correct_system("b")),
    );
    let path = tmpfile("backends.ndjson");
    std::fs::write(&path, corpus).unwrap();

    let mut verdict_lines = Vec::new();
    for backend in ["dense", "sparse"] {
        let out = run(&[path.to_str().unwrap(), "--backend", backend, "--stats"]);
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert_eq!(exit_code(&out), 1, "[{backend}] {stdout}");
        assert!(
            stdout.contains(&format!("closure backends: {backend}")),
            "[{backend}] --stats names the forced backend: {stdout}"
        );
        // Per-item verdicts, stripped of the per-item backend tag.
        let mut lines: Vec<String> = stdout
            .lines()
            .filter(|l| l.contains(": Comp-C") || l.contains(": NOT Comp-C"))
            .map(|l| l.replace(&format!(" [{backend}]"), ""))
            .collect();
        lines.sort();
        verdict_lines.push(lines);
    }
    assert_eq!(
        verdict_lines[0], verdict_lines[1],
        "dense and sparse batch verdicts must be identical line for line"
    );

    let out = run(&[path.to_str().unwrap(), "--backend", "fast"]);
    assert_eq!(exit_code(&out), 2, "unknown backends are usage errors");
}

#[test]
fn oracle_flag_cross_checks_single_and_batch_verdicts() {
    // Single mode: the oracle agrees with the engine on Figure 3.
    let out = run(&[&figure3_path(), "--oracle"]);
    assert_eq!(exit_code(&out), 1, "agreement keeps the verdict exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("oracle: agrees (not Comp-C)"), "{stdout}");

    // Batch mode: every verdict is cross-checked and summarized.
    let corpus = format!(
        "{}\n{}\n",
        spec_line(&correct_system("a")),
        spec_line(&incorrect_system()),
    );
    let path = tmpfile("oracle.ndjson");
    std::fs::write(&path, corpus).unwrap();
    let out = run(&[path.to_str().unwrap(), "--oracle"]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("oracle: agrees").count(), 2, "{stdout}");
    assert!(
        stdout.contains("oracle: 2 cross-checked, 0 skipped"),
        "{stdout}"
    );
    assert!(stdout.contains("0 disagreement(s)"), "{stdout}");

    // --help documents the flag and its exit-code semantics.
    let out = run(&["--help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--oracle"), "{stdout}");
    assert!(stdout.contains("disagreement"), "{stdout}");
}

#[test]
fn checkpoint_is_a_usage_error_in_single_mode() {
    let out = run(&[&figure3_path(), "--checkpoint", "/tmp/nope.cp"]);
    assert_eq!(exit_code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("batch mode"), "{stderr}");
}

#[test]
fn dot_is_a_usage_error_in_batch_mode() {
    let fig = figure3_path();
    let out = run(&[&fig, &fig, "--dot"]);
    assert_eq!(exit_code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("single-system"), "{stderr}");
    // Single mode still accepts it.
    let out = run(&[&fig, "--dot"]);
    assert_eq!(exit_code(&out), 1, "incorrect system, valid flags");
    assert!(String::from_utf8_lossy(&out.stdout).contains("digraph"));
}
