//! End-to-end tests for the `compc-serve` daemon: NDJSON append streams
//! over Unix and TCP sockets, one verdict line per append, protocol
//! errors, stats, graceful shutdown exit codes, and a checkpoint restart
//! mid-stream — all through the real executable.

use compc::json::{parse, Value};
use compc::spec::SystemSpec;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kills the daemon if a test panics before shutting it down.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("compc-serve spawns");
        Daemon(child)
    }

    /// Waits for a clean exit and returns the exit code.
    fn wait_code(mut self) -> i32 {
        let status = self.0.wait().expect("compc-serve exits");
        // Disarm the Drop kill: the child is already gone.
        std::mem::forget(self);
        status.code().expect("not signal-killed")
    }
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "compc-serve-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_for_socket(path: &PathBuf) -> UnixStream {
    for _ in 0..200 {
        if let Ok(stream) = UnixStream::connect(path) {
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            return stream;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("daemon never opened {}", path.display());
}

/// Sends one NDJSON request line, returns the parsed response line.
fn roundtrip(reader: &mut impl BufRead, writer: &mut impl Write, request: &str) -> Value {
    writeln!(writer, "{request}").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    parse(line.trim()).unwrap_or_else(|e| panic!("response not JSON ({e}): {line}"))
}

fn figure3_fragments() -> Vec<String> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/figure3.incorrect.json"
    );
    let spec = SystemSpec::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    let fragments = spec.into_appends();
    assert!(fragments.len() >= 2, "figure 3 has several roots");
    fragments
        .iter()
        .map(|f| Value::Object(vec![("append".to_string(), f.to_json())]).to_compact())
        .collect()
}

fn str_field<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field {key}: {}", v.to_compact()))
}

#[test]
fn unix_stream_appends_one_verdict_line_each() {
    let dir = tmpdir();
    let socket = dir.join("a.sock");
    let daemon = Daemon::spawn(&["--socket", socket.to_str().unwrap()]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let fragments = figure3_fragments();
    let mut last = None;
    for (k, request) in fragments.iter().enumerate() {
        let response = roundtrip(&mut reader, &mut writer, request);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "append {k}: {}",
            response.to_compact()
        );
        assert_eq!(
            response.get("appends").and_then(Value::as_u64),
            Some(k as u64 + 1)
        );
        last = Some(response);
    }
    // Figure 3 is the paper's violation example: the full stream must end
    // on a violation verdict naming the failing level.
    let last = last.unwrap();
    assert_eq!(str_field(&last, "verdict"), "not-comp-c");
    assert!(last.get("level").and_then(Value::as_u64).is_some());

    // Protocol errors answer without killing the connection.
    let bad = roundtrip(&mut reader, &mut writer, "{\"op\": \"nope\"}");
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(str_field(&bad, "kind"), "protocol");

    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(
        stats.get("appends").and_then(Value::as_u64),
        Some(fragments.len() as u64)
    );
    // The violation can already surface at an earlier prefix, so several
    // violating appends may have been served by now.
    assert!(stats.get("violations").and_then(Value::as_u64) >= Some(1));

    let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    // A violation verdict was served: exit code 1, mirroring compc-check.
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn checkpoint_restart_resumes_mid_stream() {
    let dir = tmpdir();
    let socket = dir.join("b.sock");
    let checkpoint = dir.join("b.checkpoint.json");
    let fragments = figure3_fragments();
    let split = fragments.len() / 2;

    // First daemon: stream the first half, then shut down.
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    {
        let stream = wait_for_socket(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for request in &fragments[..split] {
            let response = roundtrip(&mut reader, &mut writer, request);
            assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
        }
        roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    }
    daemon.wait_code();
    assert!(checkpoint.exists(), "shutdown must leave a checkpoint");

    // Second daemon restores the checkpoint and the stream continues as if
    // never interrupted: append counts include the restored prefix, and
    // the full system still lands on the figure-3 violation.
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut last = None;
    for (k, request) in fragments[split..].iter().enumerate() {
        let response = roundtrip(&mut reader, &mut writer, request);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "{}",
            response.to_compact()
        );
        assert_eq!(
            response.get("appends").and_then(Value::as_u64),
            Some((split + k) as u64 + 1),
            "append counter must resume from the checkpointed count"
        );
        last = Some(response);
    }
    let last = last.unwrap();
    assert_eq!(str_field(&last, "verdict"), "not-comp-c");
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn tcp_listener_serves_the_same_protocol() {
    let mut daemon = Daemon::spawn(&["--listen", "127.0.0.1:0"]);
    // The daemon prints the picked port as "listening on 127.0.0.1:PORT".
    let stderr = daemon.0.stderr.take().unwrap();
    let mut first_line = String::new();
    BufReader::new(stderr).read_line(&mut first_line).unwrap();
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line}"))
        .to_string();
    let stream = std::net::TcpStream::connect(&addr).expect("daemon accepts TCP");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for request in &figure3_fragments() {
        let response = roundtrip(&mut reader, &mut writer, request);
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    }
    let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "no listener flag is a usage error"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
        .args(["--socket", "/tmp/x.sock", "--backend", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // --help documents the protocol and the exit codes.
    let out = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
        .arg("--help")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let help = String::from_utf8_lossy(&out.stdout);
    for needle in ["append", "shutdown", "exit codes", "checkpoint"] {
        assert!(help.contains(needle), "--help missing {needle}");
    }
}

#[test]
fn shutdown_without_checkpoint_reports_saved_false() {
    let dir = tmpdir();
    let socket = dir.join("d.sock");
    let daemon = Daemon::spawn(&["--socket", socket.to_str().unwrap()]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // No --checkpoint configured: both the explicit checkpoint op and the
    // shutdown op must say so instead of implying a save happened.
    let cp = roundtrip(&mut reader, &mut writer, "{\"op\": \"checkpoint\"}");
    assert_eq!(cp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(cp.get("saved").and_then(Value::as_bool), Some(false));

    let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(bye.get("shutdown").and_then(Value::as_bool), Some(true));
    assert_eq!(
        bye.get("saved").and_then(Value::as_bool),
        Some(false),
        "shutdown without --checkpoint must not claim a save: {}",
        bye.to_compact()
    );
    assert_eq!(daemon.wait_code(), 0);
}

#[test]
fn stale_tmp_from_a_kill_between_write_and_rename_is_harmless() {
    let dir = tmpdir();
    let socket = dir.join("e.sock");
    let checkpoint = dir.join("e.checkpoint.json");
    let fragments = figure3_fragments();
    let split = fragments.len() / 2;

    // First daemon writes a valid checkpoint for the first half.
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    {
        let stream = wait_for_socket(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for request in &fragments[..split] {
            let response = roundtrip(&mut reader, &mut writer, request);
            assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
        }
        let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
        assert_eq!(bye.get("saved").and_then(Value::as_bool), Some(true));
    }
    daemon.wait_code();
    let valid = std::fs::read_to_string(&checkpoint).unwrap();
    parse(&valid).expect("checkpoint is valid JSON");

    // Simulate a kill between the temp-file write and the rename: a
    // truncated garbage `.tmp` is left next to the real checkpoint. The
    // save protocol (write tmp, fsync, rename) guarantees restore never
    // reads it and the next save simply overwrites it.
    let tmp = dir.join("e.checkpoint.json.tmp");
    std::fs::write(&tmp, "{\"truncated").unwrap();

    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut last = None;
    for (k, request) in fragments[split..].iter().enumerate() {
        let response = roundtrip(&mut reader, &mut writer, request);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "garbage .tmp must not poison the restore: {}",
            response.to_compact()
        );
        assert_eq!(
            response.get("appends").and_then(Value::as_u64),
            Some((split + k) as u64 + 1),
            "restore must come from the real checkpoint, not the .tmp"
        );
        last = Some(response);
    }
    assert_eq!(str_field(&last.unwrap(), "verdict"), "not-comp-c");

    let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(bye.get("saved").and_then(Value::as_bool), Some(true));
    assert_eq!(daemon.wait_code(), 1);

    // The rename consumed the temp file and the final checkpoint is whole.
    assert!(!tmp.exists(), "a completed save leaves no .tmp behind");
    let after = std::fs::read_to_string(&checkpoint).unwrap();
    parse(&after).expect("post-restart checkpoint is valid JSON");
}

#[test]
fn hostile_input_answers_structured_errors_and_daemon_keeps_serving() {
    let dir = tmpdir();
    let socket = dir.join("h.sock");
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--max-line-bytes",
        "512",
    ]);
    let fragments = figure3_fragments();

    // Invalid UTF-8: a structured protocol error, connection stays usable.
    {
        let mut stream = wait_for_socket(&socket);
        stream.write_all(b"\xff\xfe{\"op\": \"stats\"}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response = parse(line.trim()).unwrap();
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(str_field(&response, "kind"), "protocol");
        let ok = roundtrip(&mut reader, &mut stream, "{\"op\": \"stats\"}");
        assert_eq!(ok.get("ok").and_then(Value::as_bool), Some(true));
    }

    // A line over --max-line-bytes: rejected as "oversize", and the next
    // (normal) request on the same connection is still served.
    {
        let stream = wait_for_socket(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let huge = format!("{{\"op\": \"{}\"}}", "x".repeat(2048));
        let response = roundtrip(&mut reader, &mut writer, &huge);
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(str_field(&response, "kind"), "oversize");
        let ok = roundtrip(&mut reader, &mut writer, &fragments[0]);
        assert_eq!(
            ok.get("ok").and_then(Value::as_bool),
            Some(true),
            "the request after an oversize line must not be corrupted: {}",
            ok.to_compact()
        );
    }

    // An unterminated final line (EOF with no trailing newline) is still a
    // complete request and gets its response before teardown.
    {
        let mut stream = wait_for_socket(&socket);
        stream.write_all(b"{\"op\": \"stats\"}").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let response = parse(line.trim()).unwrap();
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "unterminated final request must be answered: {line}"
        );
    }

    // After all four hostile clients the daemon still serves normally.
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(stats.get("oversize_lines").and_then(Value::as_u64), Some(1));
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 0);
}

#[test]
fn idle_client_is_timed_out_without_stalling_the_daemon() {
    let dir = tmpdir();
    let socket = dir.join("i.sock");
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--idle-timeout-ms",
        "200",
    ]);
    // This client never sends anything: it must be told and disconnected.
    let idle = wait_for_socket(&socket);
    let mut line = String::new();
    BufReader::new(idle.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let response = parse(line.trim()).unwrap_or_else(|e| panic!("not JSON ({e}): {line}"));
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(str_field(&response, "kind"), "timeout");

    // The daemon itself is unaffected: a prompt client still gets served.
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(stats.get("idle_closed").and_then(Value::as_u64), Some(1));
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 0);
}

#[test]
fn two_concurrent_clients_interleave_while_a_third_idles() {
    let dir = tmpdir();
    let socket = dir.join("j.sock");
    let daemon = Daemon::spawn(&["--socket", socket.to_str().unwrap()]);
    let fragments = figure3_fragments();

    // The idle third connects first and never writes; with per-connection
    // reader threads it cannot head-of-line-block the active two.
    let _idle = wait_for_socket(&socket);
    let a = wait_for_socket(&socket);
    let b = wait_for_socket(&socket);
    let mut a_reader = BufReader::new(a.try_clone().unwrap());
    let mut a_writer = a;
    let mut b_reader = BufReader::new(b.try_clone().unwrap());
    let mut b_writer = b;

    // Alternate appends between the two connections: both feed the same
    // session, so the global append counter must tick up monotonically.
    for (k, request) in fragments.iter().enumerate() {
        let response = if k % 2 == 0 {
            roundtrip(&mut a_reader, &mut a_writer, request)
        } else {
            roundtrip(&mut b_reader, &mut b_writer, request)
        };
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "append {k} via {}: {}",
            if k % 2 == 0 { "A" } else { "B" },
            response.to_compact()
        );
        assert_eq!(
            response.get("appends").and_then(Value::as_u64),
            Some(k as u64 + 1)
        );
    }
    let stats = roundtrip(&mut a_reader, &mut a_writer, "{\"op\": \"stats\"}");
    assert!(
        stats.get("peak_connections").and_then(Value::as_u64) >= Some(3),
        "all three connections were concurrent: {}",
        stats.to_compact()
    );
    roundtrip(&mut b_reader, &mut b_writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn injected_panic_is_isolated_to_its_request() {
    let dir = tmpdir();
    let socket = dir.join("k.sock");
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--inject-panic",
        "0xDEADPANIC",
    ]);
    let fragments = figure3_fragments();
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // A request that panics the handler: this connection gets a structured
    // internal error, not a dead socket.
    let boom = roundtrip(
        &mut reader,
        &mut writer,
        "{\"op\": \"stats\", \"note\": \"0xDEADPANIC\"}",
    );
    assert_eq!(boom.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(str_field(&boom, "kind"), "internal");

    // The same connection and a second one both keep working.
    let after = roundtrip(&mut reader, &mut writer, &fragments[0]);
    assert_eq!(
        after.get("ok").and_then(Value::as_bool),
        Some(true),
        "the connection survives its own panic: {}",
        after.to_compact()
    );
    let other = wait_for_socket(&socket);
    let mut other_reader = BufReader::new(other.try_clone().unwrap());
    let mut other_writer = other;
    let second = roundtrip(&mut other_reader, &mut other_writer, &fragments[1]);
    assert_eq!(second.get("ok").and_then(Value::as_bool), Some(true));

    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(
        stats.get("internal_faults").and_then(Value::as_u64),
        Some(1)
    );
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    // An isolated internal fault is still a fault: exit code 2.
    assert_eq!(daemon.wait_code(), 2);
}

#[test]
fn panicking_append_rolls_the_session_back() {
    let dir = tmpdir();
    let socket = dir.join("l.sock");
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--inject-panic",
        "0xDEADPANIC",
    ]);
    let fragments = figure3_fragments();
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let first = roundtrip(&mut reader, &mut writer, &fragments[0]);
    assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true));

    // An append whose handling panics must not half-apply: the session is
    // restored to its pre-request snapshot...
    let poisoned = fragments[1].replace("\"append\"", "\"comment\": \"0xDEADPANIC\", \"append\"");
    let boom = roundtrip(&mut reader, &mut writer, &poisoned);
    assert_eq!(str_field(&boom, "kind"), "internal");
    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(
        stats.get("appends").and_then(Value::as_u64),
        Some(1),
        "the panicked append must not count: {}",
        stats.to_compact()
    );

    // ...and the same fragment, re-sent cleanly, applies as append #2.
    let retried = roundtrip(&mut reader, &mut writer, &fragments[1]);
    assert_eq!(retried.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(retried.get("appends").and_then(Value::as_u64), Some(2));
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 2);
}

#[test]
fn socket_path_guard_refuses_to_replace_a_regular_file() {
    let dir = tmpdir();
    let path = dir.join("precious.dat");
    std::fs::write(&path, "user data, not a socket").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
        .args(["--socket", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "binding over a regular file is refused"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("refusing to replace"),
        "stderr names the refusal: {stderr}"
    );
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        "user data, not a socket",
        "the file at the mistyped path is untouched"
    );
}

#[test]
fn fd_exhaustion_drops_connections_but_never_the_daemon() {
    let dir = tmpdir();
    let socket = dir.join("m.sock");
    // A tight fd limit makes accept/try_clone fail under connection
    // pressure — the regression was a `?` on try_clone taking down the
    // whole daemon.
    let child = Command::new("sh")
        .arg("-c")
        .arg(format!(
            "ulimit -n 24; exec '{}' --socket '{}' --idle-timeout-ms 1000",
            env!("CARGO_BIN_EXE_compc-serve"),
            socket.to_str().unwrap()
        ))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns under a tight ulimit");
    let daemon = Daemon(child);
    let _first = wait_for_socket(&socket);

    // Pile on connections far past what 24 fds can carry. Some get
    // dropped, shed, or refused — all fine, as long as the daemon lives.
    let mut pile = Vec::new();
    for _ in 0..60 {
        if let Ok(stream) = UnixStream::connect(&socket) {
            pile.push(stream);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(pile);

    // The daemon survived. Right after the pile it may still be churning
    // through dead backlog connections with exhausted fds and drop a few
    // more — the contract is that it *recovers*, so retry until it serves.
    let request = figure3_fragments()[0].clone();
    let mut served = None;
    for _ in 0..200 {
        let attempt = (|| -> std::io::Result<String> {
            let mut stream = UnixStream::connect(&socket)?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            writeln!(stream, "{request}")?;
            let mut line = String::new();
            BufReader::new(stream.try_clone()?).read_line(&mut line)?;
            Ok(line)
        })();
        if let Ok(line) = attempt {
            if let Ok(response) = parse(line.trim()) {
                if response.get("ok").and_then(Value::as_bool) == Some(true) {
                    served = Some(response);
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let served = served.expect("daemon must recover and serve after fd pressure");
    assert_eq!(served.get("appends").and_then(Value::as_u64), Some(1));

    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    // Only the (correct) first fragment was served: a clean exit 0.
    assert_eq!(daemon.wait_code(), 0);
}

#[test]
fn journal_replays_acked_appends_after_sigkill() {
    let dir = tmpdir();
    let socket = dir.join("n.sock");
    let checkpoint = dir.join("n.checkpoint.json");
    let journal = dir.join("n.journal.ndjson");
    let fragments = figure3_fragments();
    let serve_args = [
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
    ];

    // Stream every fragment, all acked (journaled), then SIGKILL: no
    // shutdown, no final checkpoint write.
    let mut daemon = Daemon::spawn(&serve_args);
    let mut last = Value::Null;
    {
        let stream = wait_for_socket(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for request in &fragments {
            last = roundtrip(&mut reader, &mut writer, request);
            assert_eq!(last.get("ok").and_then(Value::as_bool), Some(true));
        }
    }
    daemon.0.kill().unwrap();
    daemon.0.wait().unwrap();
    std::mem::forget(daemon);
    assert!(journal.exists(), "acked appends are journaled");

    // Simulate a torn trailing record from a crash mid-journal-write: it
    // was never acked, so recovery must drop it and carry on.
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        file.write_all(b"{\"seq\": 99, \"append\": {\"nod").unwrap();
    }

    // The restarted daemon replays the journal: every acked append is
    // there, and the verdict fields match the uninterrupted run exactly.
    let daemon = Daemon::spawn(&serve_args);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(
        stats.get("appends").and_then(Value::as_u64),
        Some(fragments.len() as u64),
        "all acked appends must survive the SIGKILL: {}",
        stats.to_compact()
    );
    let resent = roundtrip(&mut reader, &mut writer, fragments.last().unwrap());
    for field in ["verdict", "level", "phase"] {
        assert_eq!(
            resent.get(field).map(Value::to_compact),
            last.get(field).map(Value::to_compact),
            "recovered {field} must be bit-identical"
        );
    }
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 1);
}

/// Regression: torn tail bytes used to be left in the journal after
/// replay, and the next fsynced append was written directly after them —
/// fusing into one unparseable line that the *following* restart refused
/// as mid-file corruption, losing the acked append. Replay must truncate
/// the torn tail so later appends always start on a fresh line. The
/// checkpoint op before the kill makes the replay see applied == 0 with
/// only the torn tail — the exact case startup compaction never masked.
#[test]
fn torn_journal_tail_cannot_poison_later_acked_appends() {
    let dir = tmpdir();
    let socket = dir.join("p.sock");
    let checkpoint = dir.join("p.checkpoint.json");
    let journal = dir.join("p.journal.ndjson");
    let fragments = figure3_fragments();
    let serve_args = [
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
    ];

    // Ack one append, compact so the checkpoint covers it, then SIGKILL.
    let mut daemon = Daemon::spawn(&serve_args);
    {
        let stream = wait_for_socket(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let first = roundtrip(&mut reader, &mut writer, &fragments[0]);
        assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true));
        let compacted = roundtrip(&mut reader, &mut writer, "{\"op\": \"checkpoint\"}");
        assert_eq!(compacted.get("saved").and_then(Value::as_bool), Some(true));
    }
    daemon.0.kill().unwrap();
    daemon.0.wait().unwrap();
    std::mem::forget(daemon);

    // A crash mid-journal-write leaves torn, never-acked tail bytes.
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        file.write_all(b"{\"seq\": 99, \"append\": {\"nod").unwrap();
    }

    // Restart and ack another append: it must land on a fresh line, not
    // fused onto the torn bytes. SIGKILL again before any compaction.
    let mut daemon = Daemon::spawn(&serve_args);
    {
        let stream = wait_for_socket(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let second = roundtrip(&mut reader, &mut writer, &fragments[1]);
        assert_eq!(
            second.get("ok").and_then(Value::as_bool),
            Some(true),
            "append after a torn-tail restart must be served: {}",
            second.to_compact()
        );
        assert_eq!(second.get("appends").and_then(Value::as_u64), Some(2));
    }
    daemon.0.kill().unwrap();
    daemon.0.wait().unwrap();
    std::mem::forget(daemon);

    // The decisive restart: with the torn bytes still in the file the
    // acked second append is unparseable and the daemon refuses to start.
    let daemon = Daemon::spawn(&serve_args);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(
        stats.get("appends").and_then(Value::as_u64),
        Some(2),
        "both acked appends must survive both SIGKILLs: {}",
        stats.to_compact()
    );
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 0);
}

/// A journal can only be compacted against a checkpoint that covers its
/// records; without one it would grow without bound, so the combination
/// is refused at startup.
#[test]
fn journal_without_checkpoint_is_refused_at_startup() {
    use std::io::Read as _;
    let dir = tmpdir();
    let socket = dir.join("q.sock");
    let journal = dir.join("q.journal.ndjson");
    let mut daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
    ]);
    let status = daemon.0.wait().unwrap();
    let mut err = String::new();
    daemon
        .0
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut err)
        .unwrap();
    std::mem::forget(daemon);
    assert_eq!(status.code(), Some(2));
    assert!(
        err.contains("--journal requires --checkpoint"),
        "startup must explain the refusal: {err}"
    );
}

#[test]
fn checkpoint_op_compacts_the_journal() {
    let dir = tmpdir();
    let socket = dir.join("o.sock");
    let checkpoint = dir.join("o.checkpoint.json");
    let journal = dir.join("o.journal.ndjson");
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
    ]);
    let fragments = figure3_fragments();
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for request in &fragments {
        roundtrip(&mut reader, &mut writer, request);
    }
    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(
        stats.get("journal_records").and_then(Value::as_u64),
        Some(fragments.len() as u64)
    );
    let compacted = roundtrip(&mut reader, &mut writer, "{\"op\": \"checkpoint\"}");
    assert_eq!(compacted.get("saved").and_then(Value::as_bool), Some(true));
    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(
        stats.get("journal_records").and_then(Value::as_u64),
        Some(0),
        "compaction truncates the journal: {}",
        stats.to_compact()
    );
    assert_eq!(std::fs::metadata(&journal).unwrap().len(), 0);
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn sigterm_drains_saves_and_exits_cleanly() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;

    let dir = tmpdir();
    let socket = dir.join("p.sock");
    let checkpoint = dir.join("p.checkpoint.json");
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    let fragments = figure3_fragments();
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    // Only the first fragment: a correct prefix, so a clean drain exits 0.
    let response = roundtrip(&mut reader, &mut writer, &fragments[0]);
    assert_eq!(str_field(&response, "verdict"), "comp-c");

    let pid = daemon.0.id() as i32;
    assert_eq!(unsafe { kill(pid, SIGTERM) }, 0, "SIGTERM delivered");
    assert_eq!(
        daemon.wait_code(),
        0,
        "SIGTERM is a graceful drain, not a crash"
    );
    assert!(
        checkpoint.exists(),
        "the drain saves the checkpoint before exiting"
    );
    assert!(
        !socket.exists(),
        "the drained daemon unlinks its socket path"
    );
}

#[test]
fn send_mode_streams_a_spec_and_reports_verdicts() {
    let dir = tmpdir();
    let socket = dir.join("q.sock");
    let daemon = Daemon::spawn(&["--socket", socket.to_str().unwrap()]);
    let _ = wait_for_socket(&socket);
    let spec_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/figure3.incorrect.json"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
        .args(["--send", spec_path, "--socket", socket.to_str().unwrap()])
        .output()
        .unwrap();
    // Figure 3 is a violation: the client mirrors compc-check's exit 1.
    assert_eq!(out.status.code(), Some(1), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().expect("one response per request");
    let response = parse(last).unwrap();
    assert_eq!(str_field(&response, "verdict"), "not-comp-c");

    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn deadline_interruption_is_resumable_and_exits_3() {
    let dir = tmpdir();
    let socket = dir.join("c.sock");
    let daemon = Daemon::spawn(&["--socket", socket.to_str().unwrap(), "--deadline-ms", "0"]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let fragments = figure3_fragments();
    let response = roundtrip(&mut reader, &mut writer, &fragments[0]);
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(str_field(&response, "kind"), "interrupted");
    assert_eq!(
        response.get("resumable").and_then(Value::as_bool),
        Some(true)
    );
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 3);
}

/// Fragments of a corpus spec as request lines, optionally addressed to a
/// named session.
fn corpus_fragments(file: &str, session: Option<&str>) -> Vec<String> {
    let path = format!("{}/tests/corpus/{file}", env!("CARGO_MANIFEST_DIR"));
    let spec = SystemSpec::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    spec.into_appends()
        .iter()
        .map(|f| {
            let mut entries = Vec::new();
            if let Some(name) = session {
                entries.push(("session".to_string(), Value::from(name)));
            }
            entries.push(("append".to_string(), f.to_json()));
            Value::Object(entries).to_compact()
        })
        .collect()
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing numeric field {key}: {}", v.to_compact()))
}

#[test]
fn group_commit_covers_many_acks_with_one_fsync() {
    let dir = tmpdir();
    let socket = dir.join("gc.sock");
    let checkpoint = dir.join("gc.json");
    let journal = dir.join("gc.ndjson");
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
        "--commit-batch",
        "32",
    ]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Pipeline a burst without reading responses: while the first fsync is
    // in flight the rest queue up, so the shard drains them as batches.
    let fragments = figure3_fragments();
    let total: usize = 64;
    let burst: String = (0..total)
        .map(|k| fragments[k % fragments.len()].clone() + "\n")
        .collect();
    writer.write_all(burst.as_bytes()).unwrap();
    writer.flush().unwrap();
    for k in 0..total {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response = parse(line.trim()).unwrap();
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "append {k}: {}",
            response.to_compact()
        );
        assert_eq!(u64_field(&response, "appends"), k as u64 + 1);
    }

    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    let appends = u64_field(&stats, "appends");
    let fsyncs = u64_field(&stats, "fsyncs");
    let saved = u64_field(&stats, "fsyncs_saved");
    assert_eq!(appends, total as u64);
    assert!(fsyncs >= 1, "journaled appends imply at least one fsync");
    assert!(
        fsyncs < appends,
        "a pipelined burst must form at least one multi-record batch \
         ({fsyncs} fsyncs for {appends} appends)"
    );
    // Every journaled record either started a batch (one fsync) or rode
    // along in one (one fsync saved).
    assert_eq!(fsyncs + saved, appends);
    assert!(u64_field(&stats, "batch_max") >= 2);
    assert_eq!(u64_field(&stats, "commit_batch"), 32);
    assert_eq!(u64_field(&stats, "dispatch_shards"), 1);

    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn named_sessions_are_independent_and_survive_a_kill() {
    let dir = tmpdir();
    let socket = dir.join("ns.sock");
    let checkpoint = dir.join("ns.json");
    let journal = dir.join("ns.ndjson");
    let args = [
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
        "--commit-batch",
        "8",
        "--dispatch-shards",
        "2",
    ];
    let daemon = Daemon::spawn(&args);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Interleave two named sessions on one connection: an incorrect spec
    // into "alpha", a correct one into "beta". Each session's append
    // counter advances independently of the other's traffic.
    let alpha = corpus_fragments("figure3.incorrect.json", Some("alpha"));
    let beta = corpus_fragments("adv-forget-n11.correct.json", Some("beta"));
    let mut alpha_seen = 0u64;
    let mut beta_seen = 0u64;
    let mut last_alpha = None;
    for k in 0..alpha.len().max(beta.len()) {
        if let Some(request) = alpha.get(k) {
            let response = roundtrip(&mut reader, &mut writer, request);
            alpha_seen += 1;
            assert_eq!(str_field(&response, "session"), "alpha");
            assert_eq!(u64_field(&response, "appends"), alpha_seen);
            last_alpha = Some(response);
        }
        if let Some(request) = beta.get(k) {
            let response = roundtrip(&mut reader, &mut writer, request);
            beta_seen += 1;
            assert_eq!(str_field(&response, "session"), "beta");
            assert_eq!(u64_field(&response, "appends"), beta_seen);
        }
    }
    let last_alpha = last_alpha.unwrap();
    assert_eq!(str_field(&last_alpha, "verdict"), "not-comp-c");
    let alpha_level = u64_field(&last_alpha, "level");

    let stats = roundtrip(
        &mut reader,
        &mut writer,
        "{\"op\": \"stats\", \"session\": \"alpha\"}",
    );
    assert_eq!(str_field(&stats, "session"), "alpha");
    assert_eq!(u64_field(&stats, "session_appends"), alpha_seen);
    // default (always present) + alpha + beta.
    assert_eq!(u64_field(&stats, "sessions"), 3);

    // Crash hard mid-life (Drop kills the child): acked appends of *both*
    // sessions must replay.
    drop(daemon);

    let daemon = Daemon::spawn(&args);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let stats = roundtrip(
        &mut reader,
        &mut writer,
        "{\"op\": \"stats\", \"session\": \"alpha\"}",
    );
    assert_eq!(u64_field(&stats, "session_appends"), alpha_seen);
    let stats = roundtrip(
        &mut reader,
        &mut writer,
        "{\"op\": \"stats\", \"session\": \"beta\"}",
    );
    assert_eq!(u64_field(&stats, "session_appends"), beta_seen);

    // The recovered alpha session still answers the same violation.
    let response = roundtrip(&mut reader, &mut writer, alpha.last().unwrap());
    assert_eq!(str_field(&response, "session"), "alpha");
    assert_eq!(str_field(&response, "verdict"), "not-comp-c");
    assert_eq!(u64_field(&response, "level"), alpha_level);

    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 1);

    // The multi-session checkpoint document lists sessions by name.
    let doc = parse(&std::fs::read_to_string(&checkpoint).unwrap()).unwrap();
    let names: Vec<&str> = doc
        .get("sessions")
        .and_then(|s| s.as_array())
        .expect("multi-session checkpoint has a sessions array")
        .iter()
        .map(|s| str_field(s, "session"))
        .collect();
    assert!(names.contains(&"alpha") && names.contains(&"beta"));
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "sessions are name-sorted: {names:?}");
}

#[test]
fn default_only_journal_and_checkpoint_stay_legacy_shaped() {
    let dir = tmpdir();
    let socket = dir.join("lg.sock");
    let checkpoint = dir.join("lg.json");
    let journal = dir.join("lg.ndjson");
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
        "--commit-batch",
        "4",
    ]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Two session-less appends: the PR 8 protocol, byte-compatible files.
    let fragments = figure3_fragments();
    for request in fragments.iter().take(2) {
        let response = roundtrip(&mut reader, &mut writer, request);
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    }

    // Journal records for the default session carry no "session" key —
    // exactly the single-session record shape older daemons replay.
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    let records: Vec<Value> = journal_text
        .lines()
        .map(|line| parse(line).unwrap())
        .collect();
    assert_eq!(records.len(), 2);
    for (k, record) in records.iter().enumerate() {
        assert_eq!(u64_field(record, "seq"), k as u64 + 1);
        assert!(record.get("append").is_some());
        assert!(
            record.get("session").is_none(),
            "default-session records stay legacy-shaped: {}",
            record.to_compact()
        );
    }

    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    daemon.wait_code();

    // And the checkpoint is the legacy single-session document, not the
    // multi-session wrapper.
    let doc = parse(&std::fs::read_to_string(&checkpoint).unwrap()).unwrap();
    assert!(doc.get("sessions").is_none());
    assert!(doc.get("spec").is_some());
    assert_eq!(u64_field(&doc, "appends"), 2);
}

#[test]
fn trace_stream_reports_batching_gauges() {
    let dir = tmpdir();
    let socket = dir.join("tg.sock");
    let checkpoint = dir.join("tg.json");
    let journal = dir.join("tg.ndjson");
    let stdout_path = dir.join("tg.trace");
    let stdout = std::fs::File::create(&stdout_path).unwrap();
    let child = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
        .args([
            "--socket",
            socket.to_str().unwrap(),
            "--checkpoint",
            checkpoint.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--commit-batch",
            "16",
            "--dispatch-shards",
            "2",
            "--trace",
        ])
        .stdout(Stdio::from(stdout))
        .stderr(Stdio::null())
        .spawn()
        .expect("compc-serve spawns");
    let daemon = Daemon(child);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let lines = corpus_fragments("figure3.incorrect.json", Some("t"));
    let total = 24;
    let burst: String = (0..total)
        .map(|k| lines[k % lines.len()].clone() + "\n")
        .collect();
    writer.write_all(burst.as_bytes()).unwrap();
    writer.flush().unwrap();
    for _ in 0..total {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
    }
    // The stats op flushes a serve_gauges event into the trace stream.
    roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    daemon.wait_code();

    let trace = std::fs::read_to_string(&stdout_path).unwrap();
    let gauges = trace
        .lines()
        .map(|line| parse(line).unwrap())
        .find(|event| event.get("event").and_then(Value::as_str) == Some("serve_gauges"))
        .expect("trace stream contains a serve_gauges event");
    assert_eq!(str_field(&gauges, "label"), "serve");
    assert!(u64_field(&gauges, "fsyncs") >= 1);
    // fsyncs + fsyncs_saved accounts for every journaled record.
    assert_eq!(
        u64_field(&gauges, "fsyncs") + u64_field(&gauges, "fsyncs_saved"),
        total as u64
    );
    let buckets = gauges
        .get("batch_buckets")
        .and_then(|b| b.as_array())
        .expect("log2 batch histogram");
    let batches: u64 = buckets.iter().filter_map(Value::as_u64).sum();
    assert_eq!(batches, u64_field(&gauges, "fsyncs"));
    let depths = gauges
        .get("shard_depths")
        .and_then(|d| d.as_array())
        .expect("per-shard queue depths");
    assert_eq!(depths.len(), 2);
}
