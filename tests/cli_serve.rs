//! End-to-end tests for the `compc-serve` daemon: NDJSON append streams
//! over Unix and TCP sockets, one verdict line per append, protocol
//! errors, stats, graceful shutdown exit codes, and a checkpoint restart
//! mid-stream — all through the real executable.

use compc::json::{parse, Value};
use compc::spec::SystemSpec;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kills the daemon if a test panics before shutting it down.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("compc-serve spawns");
        Daemon(child)
    }

    /// Waits for a clean exit and returns the exit code.
    fn wait_code(mut self) -> i32 {
        let status = self.0.wait().expect("compc-serve exits");
        // Disarm the Drop kill: the child is already gone.
        std::mem::forget(self);
        status.code().expect("not signal-killed")
    }
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "compc-serve-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_for_socket(path: &PathBuf) -> UnixStream {
    for _ in 0..200 {
        if let Ok(stream) = UnixStream::connect(path) {
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            return stream;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("daemon never opened {}", path.display());
}

/// Sends one NDJSON request line, returns the parsed response line.
fn roundtrip(reader: &mut impl BufRead, writer: &mut impl Write, request: &str) -> Value {
    writeln!(writer, "{request}").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    parse(line.trim()).unwrap_or_else(|e| panic!("response not JSON ({e}): {line}"))
}

fn figure3_fragments() -> Vec<String> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/figure3.incorrect.json"
    );
    let spec = SystemSpec::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    let fragments = spec.into_appends();
    assert!(fragments.len() >= 2, "figure 3 has several roots");
    fragments
        .iter()
        .map(|f| Value::Object(vec![("append".to_string(), f.to_json())]).to_compact())
        .collect()
}

fn str_field<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field {key}: {}", v.to_compact()))
}

#[test]
fn unix_stream_appends_one_verdict_line_each() {
    let dir = tmpdir();
    let socket = dir.join("a.sock");
    let daemon = Daemon::spawn(&["--socket", socket.to_str().unwrap()]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let fragments = figure3_fragments();
    let mut last = None;
    for (k, request) in fragments.iter().enumerate() {
        let response = roundtrip(&mut reader, &mut writer, request);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "append {k}: {}",
            response.to_compact()
        );
        assert_eq!(
            response.get("appends").and_then(Value::as_u64),
            Some(k as u64 + 1)
        );
        last = Some(response);
    }
    // Figure 3 is the paper's violation example: the full stream must end
    // on a violation verdict naming the failing level.
    let last = last.unwrap();
    assert_eq!(str_field(&last, "verdict"), "not-comp-c");
    assert!(last.get("level").and_then(Value::as_u64).is_some());

    // Protocol errors answer without killing the connection.
    let bad = roundtrip(&mut reader, &mut writer, "{\"op\": \"nope\"}");
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(str_field(&bad, "kind"), "protocol");

    let stats = roundtrip(&mut reader, &mut writer, "{\"op\": \"stats\"}");
    assert_eq!(
        stats.get("appends").and_then(Value::as_u64),
        Some(fragments.len() as u64)
    );
    // The violation can already surface at an earlier prefix, so several
    // violating appends may have been served by now.
    assert!(stats.get("violations").and_then(Value::as_u64) >= Some(1));

    let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    // A violation verdict was served: exit code 1, mirroring compc-check.
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn checkpoint_restart_resumes_mid_stream() {
    let dir = tmpdir();
    let socket = dir.join("b.sock");
    let checkpoint = dir.join("b.checkpoint.json");
    let fragments = figure3_fragments();
    let split = fragments.len() / 2;

    // First daemon: stream the first half, then shut down.
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    {
        let stream = wait_for_socket(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for request in &fragments[..split] {
            let response = roundtrip(&mut reader, &mut writer, request);
            assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
        }
        roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    }
    daemon.wait_code();
    assert!(checkpoint.exists(), "shutdown must leave a checkpoint");

    // Second daemon restores the checkpoint and the stream continues as if
    // never interrupted: append counts include the restored prefix, and
    // the full system still lands on the figure-3 violation.
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut last = None;
    for (k, request) in fragments[split..].iter().enumerate() {
        let response = roundtrip(&mut reader, &mut writer, request);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "{}",
            response.to_compact()
        );
        assert_eq!(
            response.get("appends").and_then(Value::as_u64),
            Some((split + k) as u64 + 1),
            "append counter must resume from the checkpointed count"
        );
        last = Some(response);
    }
    let last = last.unwrap();
    assert_eq!(str_field(&last, "verdict"), "not-comp-c");
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn tcp_listener_serves_the_same_protocol() {
    let mut daemon = Daemon::spawn(&["--listen", "127.0.0.1:0"]);
    // The daemon prints the picked port as "listening on 127.0.0.1:PORT".
    let stderr = daemon.0.stderr.take().unwrap();
    let mut first_line = String::new();
    BufReader::new(stderr).read_line(&mut first_line).unwrap();
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line}"))
        .to_string();
    let stream = std::net::TcpStream::connect(&addr).expect("daemon accepts TCP");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for request in &figure3_fragments() {
        let response = roundtrip(&mut reader, &mut writer, request);
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    }
    let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(daemon.wait_code(), 1);
}

#[test]
fn usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "no listener flag is a usage error"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
        .args(["--socket", "/tmp/x.sock", "--backend", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // --help documents the protocol and the exit codes.
    let out = Command::new(env!("CARGO_BIN_EXE_compc-serve"))
        .arg("--help")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let help = String::from_utf8_lossy(&out.stdout);
    for needle in ["append", "shutdown", "exit codes", "checkpoint"] {
        assert!(help.contains(needle), "--help missing {needle}");
    }
}

#[test]
fn shutdown_without_checkpoint_reports_saved_false() {
    let dir = tmpdir();
    let socket = dir.join("d.sock");
    let daemon = Daemon::spawn(&["--socket", socket.to_str().unwrap()]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // No --checkpoint configured: both the explicit checkpoint op and the
    // shutdown op must say so instead of implying a save happened.
    let cp = roundtrip(&mut reader, &mut writer, "{\"op\": \"checkpoint\"}");
    assert_eq!(cp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(cp.get("saved").and_then(Value::as_bool), Some(false));

    let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(bye.get("shutdown").and_then(Value::as_bool), Some(true));
    assert_eq!(
        bye.get("saved").and_then(Value::as_bool),
        Some(false),
        "shutdown without --checkpoint must not claim a save: {}",
        bye.to_compact()
    );
    assert_eq!(daemon.wait_code(), 0);
}

#[test]
fn stale_tmp_from_a_kill_between_write_and_rename_is_harmless() {
    let dir = tmpdir();
    let socket = dir.join("e.sock");
    let checkpoint = dir.join("e.checkpoint.json");
    let fragments = figure3_fragments();
    let split = fragments.len() / 2;

    // First daemon writes a valid checkpoint for the first half.
    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    {
        let stream = wait_for_socket(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for request in &fragments[..split] {
            let response = roundtrip(&mut reader, &mut writer, request);
            assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
        }
        let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
        assert_eq!(bye.get("saved").and_then(Value::as_bool), Some(true));
    }
    daemon.wait_code();
    let valid = std::fs::read_to_string(&checkpoint).unwrap();
    parse(&valid).expect("checkpoint is valid JSON");

    // Simulate a kill between the temp-file write and the rename: a
    // truncated garbage `.tmp` is left next to the real checkpoint. The
    // save protocol (write tmp, fsync, rename) guarantees restore never
    // reads it and the next save simply overwrites it.
    let tmp = dir.join("e.checkpoint.json.tmp");
    std::fs::write(&tmp, "{\"truncated").unwrap();

    let daemon = Daemon::spawn(&[
        "--socket",
        socket.to_str().unwrap(),
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut last = None;
    for (k, request) in fragments[split..].iter().enumerate() {
        let response = roundtrip(&mut reader, &mut writer, request);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "garbage .tmp must not poison the restore: {}",
            response.to_compact()
        );
        assert_eq!(
            response.get("appends").and_then(Value::as_u64),
            Some((split + k) as u64 + 1),
            "restore must come from the real checkpoint, not the .tmp"
        );
        last = Some(response);
    }
    assert_eq!(str_field(&last.unwrap(), "verdict"), "not-comp-c");

    let bye = roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(bye.get("saved").and_then(Value::as_bool), Some(true));
    assert_eq!(daemon.wait_code(), 1);

    // The rename consumed the temp file and the final checkpoint is whole.
    assert!(!tmp.exists(), "a completed save leaves no .tmp behind");
    let after = std::fs::read_to_string(&checkpoint).unwrap();
    parse(&after).expect("post-restart checkpoint is valid JSON");
}

#[test]
fn deadline_interruption_is_resumable_and_exits_3() {
    let dir = tmpdir();
    let socket = dir.join("c.sock");
    let daemon = Daemon::spawn(&["--socket", socket.to_str().unwrap(), "--deadline-ms", "0"]);
    let stream = wait_for_socket(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let fragments = figure3_fragments();
    let response = roundtrip(&mut reader, &mut writer, &fragments[0]);
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(str_field(&response, "kind"), "interrupted");
    assert_eq!(
        response.get("resumable").and_then(Value::as_bool),
        Some(true)
    );
    roundtrip(&mut reader, &mut writer, "{\"op\": \"shutdown\"}");
    assert_eq!(daemon.wait_code(), 3);
}
