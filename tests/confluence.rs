//! Confluence of the reduction: Definition 16 processes schedules level by
//! level, but any *invocation-respecting* order (a schedule after everything
//! it invokes) must yield the same verdict — otherwise "has a level-N front"
//! would be ill-defined as a correctness criterion. These tests reduce
//! random systems one schedule at a time in random valid orders and compare
//! against the canonical engine.

use compc::core::{check, Reducer};
use compc::model::{CompositeSystem, SchedId};
use compc::workload::random::{generate, GenParams, Shape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A random linear order of the schedules in which every schedule appears
/// after all schedules it invokes (children of the invocation DAG first).
fn random_reduction_order(sys: &CompositeSystem, seed: u64) -> Vec<SchedId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ig = sys.invocation_graph();
    let mut remaining: Vec<usize> = (0..sys.schedule_count()).collect();
    let mut done = vec![false; sys.schedule_count()];
    let mut order = Vec::new();
    while !remaining.is_empty() {
        // Ready = all invoked schedules already reduced.
        let ready: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&s| ig.successors(s).all(|t| done[t]))
            .collect();
        assert!(!ready.is_empty(), "invocation graph is acyclic");
        let pick = *ready.as_slice().choose(&mut rng).unwrap();
        done[pick] = true;
        remaining.retain(|&s| s != pick);
        order.push(SchedId(pick as u32));
    }
    order
}

/// Runs the reduction one schedule at a time in the given order.
fn check_schedulewise(sys: &CompositeSystem, order: &[SchedId]) -> bool {
    let mut red = Reducer::new(sys);
    if red.front().is_cc().is_some() {
        return false;
    }
    for (i, &sid) in order.iter().enumerate() {
        if red.step_schedules(&[sid], i + 1).is_err() {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Any invocation-respecting schedule-at-a-time reduction agrees with
    /// the canonical level-by-level verdict.
    #[test]
    fn reduction_is_confluent(
        seed in 0u64..100_000,
        order_seed in 0u64..1_000,
        density in 0u8..=90,
    ) {
        let sys = generate(&GenParams {
            shape: Shape::General {
                levels: 3,
                scheds_per_level: 2,
            },
            roots: 4,
            ops_per_tx: (1, 3),
            conflict_density: density as f64 / 100.0,
            sequential_tx_prob: 0.7,
            client_input_prob: 0.2,
            strong_input_prob: 0.2,
            sound_abstractions: false,
            seed,
        });
        let canonical = check(&sys).is_correct();
        let order = random_reduction_order(&sys, order_seed);
        let schedulewise = check_schedulewise(&sys, &order);
        prop_assert_eq!(
            canonical,
            schedulewise,
            "divergent verdicts for order {:?} at seed {}",
            order,
            seed
        );
    }

    /// Batch steps of random *ready antichains* also agree (a middle ground
    /// between per-schedule and per-level). A batch may not contain a
    /// schedule that invokes another schedule of the same batch — exactly
    /// the property levels have.
    #[test]
    fn random_batching_is_confluent(
        seed in 0u64..100_000,
        order_seed in 0u64..1_000,
    ) {
        let sys = generate(&GenParams {
            shape: Shape::General {
                levels: 3,
                scheds_per_level: 2,
            },
            roots: 4,
            ops_per_tx: (1, 3),
            conflict_density: 0.5,
            sequential_tx_prob: 0.7,
            client_input_prob: 0.0,
            strong_input_prob: 0.0,
                sound_abstractions: false,
            seed,
        });
        let canonical = check(&sys).is_correct();
        let ig = sys.invocation_graph();
        let mut rng = StdRng::seed_from_u64(order_seed ^ 0xfeed);
        let mut done = vec![false; sys.schedule_count()];
        let mut red = Reducer::new(&sys);
        let mut ok = red.front().is_cc().is_none();
        let mut label = 0;
        while ok && done.iter().any(|&d| !d) {
            let ready: Vec<SchedId> = (0..sys.schedule_count())
                .filter(|&s| !done[s] && ig.successors(s).all(|t| done[t]))
                .map(|s| SchedId(s as u32))
                .collect();
            prop_assert!(!ready.is_empty());
            // A random nonempty subset of the ready antichain.
            let take = rng.gen_range(1..=ready.len());
            let mut batch = ready;
            batch.shuffle(&mut rng);
            batch.truncate(take);
            for &s in &batch {
                done[s.index()] = true;
            }
            label += 1;
            if red.step_schedules(&batch, label).is_err() {
                ok = false;
            }
        }
        prop_assert_eq!(canonical, ok);
    }
}
