//! Replay of the committed corpus under `tests/corpus/`: every entry must
//! parse, build, survive a spec round-trip, and get its filename-encoded
//! verdict from every closure backend (sparse, dense, compressed) and the
//! brute-force oracle. The corpus is the durable output of fuzzing sessions — the
//! paper's Figures 1–4 plus shrunk adversarial systems (see TESTING.md for
//! the triage procedure that adds entries here).

use compc::spec::SystemSpec;
use compc_core::{CheckOptions, Checker};
use compc_fuzz::corpus::{expected_from_name, replay_dir, BACKENDS};
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

/// Every corpus file gets its expected verdict from both closure backends
/// and the oracle. All committed entries are small enough that the oracle
/// runs on each one — a cap-skipped entry would silently weaken the suite,
/// so the test insists on full oracle coverage.
#[test]
fn corpus_replays_on_both_backends_and_the_oracle() {
    let stats = replay_dir(&corpus_dir(), compc::oracle::RECOMMENDED_NODE_CAP)
        .unwrap_or_else(|failures| panic!("corpus replay failed:\n{}", failures.join("\n")));
    assert!(stats.correct > 0, "corpus has no correct entries");
    assert!(stats.incorrect > 0, "corpus has no incorrect entries");
    assert_eq!(
        stats.oracle_checked, stats.files,
        "every committed corpus entry must be small enough for the oracle"
    );
}

/// The corpus seeding itself is pinned: the paper's four figures are
/// present under their canonical names, and at least six shrunk
/// adversarial entries ride alongside them.
#[test]
fn corpus_contains_the_figures_and_adversarial_entries() {
    let names: Vec<String> = fs::read_dir(corpus_dir())
        .expect("corpus dir exists")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| expected_from_name(n).is_some())
        .collect();
    assert!(names.contains(&"figure1.correct.json".to_string()));
    assert!(names.contains(&"figure2.correct.json".to_string()));
    assert!(names.contains(&"figure3.incorrect.json".to_string()));
    assert!(names.contains(&"figure4.correct.json".to_string()));
    let adversarial = names.iter().filter(|n| n.starts_with("adv-")).count();
    assert!(
        adversarial >= 6,
        "expected at least 6 shrunk adversarial entries, found {adversarial}"
    );
}

/// One table-driven loop: every corpus file's filename-encoded verdict is
/// asserted against **all three** closure backends (sparse, dense,
/// compressed) and the brute-force oracle, so a backend added later is
/// covered by extending [`BACKENDS`] rather than by remembering to clone a
/// test.
#[test]
fn every_corpus_file_agrees_on_all_backends_and_the_oracle() {
    let dir = corpus_dir();
    let mut checked = 0;
    for entry in fs::read_dir(&dir).expect("corpus dir exists") {
        let path = entry.expect("readable entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(expected) = expected_from_name(name) else {
            continue;
        };
        let text = fs::read_to_string(&path).expect("readable corpus file");
        let sys = SystemSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{name}: parse failed: {e}"))
            .build()
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        for (label, backend) in BACKENDS {
            let verdict = Checker::with_options(CheckOptions::new().backend(backend)).check(&sys);
            assert_eq!(
                verdict.is_correct(),
                expected,
                "{name}: {label} backend disagrees with the filename verdict"
            );
        }
        assert_eq!(
            compc::oracle::decide(&sys).accepted(),
            expected,
            "{name}: oracle disagrees with the filename verdict"
        );
        checked += 1;
    }
    assert!(checked >= 12, "corpus unexpectedly small: {checked} files");
}

/// Corpus entries survive a spec round-trip with the verdict intact — a
/// serialization regression would quietly detach the committed JSON from
/// the system it is meant to pin.
#[test]
fn corpus_entries_roundtrip_through_the_spec_format() {
    let dir = corpus_dir();
    let mut checked = 0;
    for entry in fs::read_dir(&dir).expect("corpus dir exists") {
        let path = entry.expect("readable entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(expected) = expected_from_name(name) else {
            continue;
        };
        let text = fs::read_to_string(&path).expect("readable corpus file");
        let sys = SystemSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{name}: parse failed: {e}"))
            .build()
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        let verdict =
            compc_fuzz::corpus::roundtrip_verdict(&sys).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(verdict, expected, "{name}: round-trip verdict mismatch");
        checked += 1;
    }
    assert!(checked >= 12, "corpus unexpectedly small: {checked} files");
}
