//! The paper's §1/§4 comparative claims: on stacks,
//! `LLSR ⊆ OPSR ⊆ SCC ≡ Comp-C`, with every inclusion strict somewhere;
//! and on flat systems `CSR ≡ Comp-C` with OPSR strictly inside.

use compc::classic::{is_csr, is_llsr_stack, is_opsr_flat, is_opsr_stack, HistOp, History};
use compc::configs::is_scc;
use compc::core::check;
use compc::model::{CommutativityTable, ItemId, OpSpec};
use compc::workload::random::{generate, GenParams, Shape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_history(seed: u64, txs: usize, ops: usize, items: u32) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = (0..ops)
        .map(|_| {
            let tx = rng.gen_range(0..txs);
            let item = ItemId(rng.gen_range(0..items));
            let spec = if rng.gen_bool(0.5) {
                OpSpec::read(item)
            } else {
                OpSpec::write(item)
            };
            HistOp { tx, spec }
        })
        .collect();
    History::new(ops, CommutativityTable::read_write())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flat embedding: classical conflict serializability coincides with
    /// Comp-C on one-level systems.
    #[test]
    fn csr_iff_comp_c_on_flat_histories(
        seed in 0u64..100_000,
        txs in 2usize..=4,
        ops in 2usize..=10,
    ) {
        let h = random_history(seed, txs, ops, 3);
        let sys = h.to_composite().expect("embedding is always valid");
        prop_assert_eq!(is_csr(&h), check(&sys).is_correct());
    }

    /// OPSR implies CSR on flat histories (order preservation only shrinks
    /// the class).
    #[test]
    fn opsr_implies_csr_flat(seed in 0u64..100_000, ops in 2usize..=10) {
        let h = random_history(seed, 3, ops, 3);
        if is_opsr_flat(&h) {
            prop_assert!(is_csr(&h));
        }
    }

    /// The containment chain on random stacks: every LLSR stack is OPSR,
    /// every OPSR stack is SCC, and SCC coincides with Comp-C (Theorem 2).
    #[test]
    fn chain_on_random_stacks(
        seed in 0u64..100_000,
        depth in 2usize..=4,
        density in 0u8..=90,
    ) {
        let sys = generate(&GenParams {
            shape: Shape::Stack { depth },
            roots: 4,
            ops_per_tx: (1, 3),
            conflict_density: density as f64 / 100.0,
            sequential_tx_prob: 0.7,
                client_input_prob: 0.0,
                strong_input_prob: 0.0,
                sound_abstractions: false,
            seed,
        });
        let llsr = is_llsr_stack(&sys).expect("stack shaped");
        let opsr = is_opsr_stack(&sys).expect("stack shaped");
        let scc = is_scc(&sys);
        let comp_c = check(&sys).is_correct();
        if llsr {
            prop_assert!(opsr, "LLSR ⊆ OPSR violated at seed {}", seed);
        }
        if opsr {
            prop_assert!(scc, "OPSR ⊆ SCC violated at seed {}", seed);
        }
        prop_assert_eq!(scc, comp_c, "SCC ≡ Comp-C violated at seed {}", seed);
    }
}

/// Each inclusion is strict: the separators from the paper's §1 argument
/// exist as concrete systems.
#[test]
fn chain_inclusions_are_strict() {
    use compc::model::SystemBuilder;

    // OPSR ⊊ SCC: a weak input order satisfied by commutativity while the
    // execution ran the other way (see compc-classic's layered module docs).
    let mut b = SystemBuilder::new();
    let s2 = b.schedule("S2");
    let s1 = b.schedule("S1");
    let t1 = b.root("T1", s2);
    let t2 = b.root("T2", s2);
    let u1 = b.subtx("u1", t1, s1);
    let u2 = b.subtx("u2", t2, s1);
    b.leaf("o1", u1);
    b.leaf("o2", u2);
    b.input_weak(t2, t1).unwrap();
    b.output_weak(u1, u2).unwrap();
    b.propagate_orders().unwrap();
    let sys = b.build().unwrap();
    assert_eq!(is_opsr_stack(&sys), Some(false));
    assert!(is_scc(&sys));
    assert!(check(&sys).is_correct());

    // LLSR ⊊ OPSR: a top-level conflict implemented by commuting lower
    // operations (outside LLSR's conflict-implication model).
    let mut b = SystemBuilder::new();
    let s2 = b.schedule("S2");
    let s1 = b.schedule("S1");
    let t1 = b.root("T1", s2);
    let t2 = b.root("T2", s2);
    let u1 = b.subtx("u1", t1, s1);
    let u2 = b.subtx("u2", t2, s1);
    b.leaf("o1", u1);
    b.leaf("o2", u2);
    b.conflict(u1, u2).unwrap();
    b.output_weak(u1, u2).unwrap();
    b.propagate_orders().unwrap();
    let sys = b.build().unwrap();
    assert_eq!(is_llsr_stack(&sys), Some(false));
    assert_eq!(is_opsr_stack(&sys), Some(true));

    // OPSR ⊊ CSR flat: the textbook order-preservation separator.
    let h = History::read_write(vec![
        HistOp::w(0, 0),
        HistOp::r(1, 0),
        HistOp::r(2, 1),
        HistOp::w(0, 1),
    ]);
    assert!(is_csr(&h));
    assert!(!is_opsr_flat(&h));
}

/// Acceptance rates must be ordered over a contended population — the
/// quantitative form of the chain (the E9 experiment in miniature).
#[test]
fn acceptance_rates_are_monotone() {
    let mut counts = (0u32, 0u32, 0u32); // (llsr, opsr, scc/compc)
    let total = 300;
    for seed in 0..total {
        let sys = generate(&GenParams {
            shape: Shape::Stack { depth: 3 },
            roots: 4,
            ops_per_tx: (1, 3),
            conflict_density: 0.5,
            sequential_tx_prob: 0.7,
            client_input_prob: 0.0,
            strong_input_prob: 0.0,
            sound_abstractions: false,
            seed,
        });
        if is_llsr_stack(&sys).unwrap() {
            counts.0 += 1;
        }
        if is_opsr_stack(&sys).unwrap() {
            counts.1 += 1;
        }
        if is_scc(&sys) {
            counts.2 += 1;
        }
    }
    assert!(counts.0 <= counts.1);
    assert!(counts.1 <= counts.2);
    assert!(counts.2 > 0, "population must contain accepted stacks");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The classical hierarchy on random small histories:
    /// CSR ⊆ VSR ⊆ FSR.
    #[test]
    fn classical_hierarchy_csr_vsr_fsr(
        seed in 0u64..100_000,
        txs in 2usize..=4,
        ops in 2usize..=8,
    ) {
        use compc::classic::{is_fsr_bruteforce, is_vsr_bruteforce};
        let h = random_history(seed, txs, ops, 2);
        let csr = is_csr(&h);
        let vsr = is_vsr_bruteforce(&h);
        let fsr = is_fsr_bruteforce(&h);
        if csr {
            prop_assert!(vsr, "CSR ⊆ VSR violated at seed {}", seed);
        }
        if vsr {
            prop_assert!(fsr, "VSR ⊆ FSR violated at seed {}", seed);
        }
    }
}
