//! Kitchen-sink integration: every public surface in one pipeline —
//! generate → spec round trip → check → minimize → visualize → simulate →
//! export → replay.

use compc::core::{check, minimize, Verdict};
use compc::sim::{Engine, LockScope, Protocol, SimConfig};
use compc::spec::SystemSpec;
use compc::workload::random::{generate, GenParams, Shape};
use compc::workload::random_sim::{generate_sim, SimGenParams};

#[test]
fn full_pipeline_on_static_systems() {
    let mut correct = 0;
    let mut incorrect = 0;
    for seed in 0..30 {
        let sys = generate(&GenParams {
            shape: Shape::General {
                levels: 3,
                scheds_per_level: 2,
            },
            roots: 4,
            ops_per_tx: (1, 3),
            conflict_density: 0.5,
            sequential_tx_prob: 0.7,
            client_input_prob: 0.2,
            strong_input_prob: 0.2,
            sound_abstractions: seed % 2 == 0,
            seed,
        });

        // JSON round trip preserves the verdict.
        let spec = SystemSpec::from_system(&sys);
        let json = spec.to_json().to_compact();
        let back = SystemSpec::parse(&json).unwrap();
        let rebuilt = back.build().expect("extracted specs rebuild");
        assert_eq!(
            check(&sys).is_correct(),
            check(&rebuilt).is_correct(),
            "seed {seed}"
        );

        match check(&sys) {
            Verdict::Correct(proof) => {
                correct += 1;
                // Every front renders to DOT.
                for front in &proof.fronts {
                    let dot = front.to_dot(&sys);
                    assert!(dot.starts_with("digraph"));
                }
            }
            Verdict::Incorrect(cex) => {
                incorrect += 1;
                assert!(!cex.cycle.is_empty());
                assert!(!cex.to_string().is_empty());
                // Minimization yields a smaller-or-equal, still-broken core.
                let min = minimize(&sys).expect("incorrect systems minimize");
                assert!(min.roots.len() <= sys.roots().count());
                assert!(!check(&min.system).is_correct());
            }
        }
        // Forest DOT always renders.
        assert!(sys.forest_dot().contains("digraph"));
    }
    assert!(correct > 0 && incorrect > 0, "population must be mixed");
}

#[test]
fn full_pipeline_on_simulated_systems() {
    for seed in 0..10 {
        let (topo, templates) = generate_sim(
            &SimGenParams {
                seed,
                clients: 8,
                ..SimGenParams::default()
            },
            Protocol::TwoPhase {
                scope: LockScope::Composite,
            },
        );
        let report = Engine::new(
            topo,
            templates,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        )
        .run();
        let (sys, roots) = report.export_with_roots().expect("valid export");

        // Spec round trip of a *simulated* system.
        let spec = SystemSpec::from_system(&sys);
        let rebuilt = spec.build().expect("sim exports rebuild from spec");
        assert_eq!(sys.node_count(), rebuilt.node_count());

        // Verdict + replay.
        let proof = match check(&sys) {
            Verdict::Correct(p) => p,
            Verdict::Incorrect(c) => panic!("closed 2PL must be Comp-C: {c}"),
        };
        let order: Vec<u32> = proof.serial_witness.iter().map(|n| roots[n]).collect();
        assert_eq!(report.replay_serially(&order), report.stores, "seed {seed}");
    }
}
