//! Validation of explainable verdicts: an [`Explanation`] is not just
//! prose — its witness cycle must be a real cycle in the definitional
//! relations of the failing front, and its minimal root set must actually
//! be 1-minimal. These tests recompute both claims from the system itself,
//! across random incorrect systems of both failure phases.

use compc::core::{check, FailurePhase};
use compc::model::{CompositeSystem, NodeId, SystemBuilder};
use compc::workload::random::{generate, GenParams, Shape};

fn node_by_name(sys: &CompositeSystem, name: &str) -> NodeId {
    sys.nodes()
        .find(|n| sys.name(n.id) == name)
        .unwrap_or_else(|| panic!("no node named {name}"))
        .id
}

/// Whether `n` is `anc` or a forest descendant of `anc`.
fn within(sys: &CompositeSystem, anc: NodeId, n: NodeId) -> bool {
    n == anc || sys.descendants(anc).contains(&n)
}

/// Recomputes every consecutive edge of the explanation's witness cycle
/// from the failing front and the system, per the failing phase:
///
/// * conflict-consistency failures: the cycle lives in the front's
///   `observed ∪ input` relation (Definition 13), so each edge must be one
///   of those pairs directly;
/// * calculation failures: the cycle lives in the *contracted* constraint
///   graph of the pre-step front (Definition 16 step 1), so each edge
///   `A -> B` must be witnessed by front members `a ∈ A`, `b ∈ B` with
///   `(a, b)` an input pair, a generalized-conflicting observed pair, or a
///   same-schedule declared-conflicting pair in the executed direction.
fn validate_cycle(sys: &CompositeSystem, ex: &compc::core::Explanation) {
    assert!(!ex.cycle.is_empty(), "a failure must carry a witness cycle");
    if ex.cycle.len() > 1 {
        assert_eq!(
            ex.cycle.first(),
            ex.cycle.last(),
            "multi-node cycles are closed"
        );
    }
    let front = &ex.failing_front;
    let edges: Vec<(NodeId, NodeId)> = ex.cycle[..ex.cycle.len().saturating_sub(1)]
        .iter()
        .zip(&ex.cycle[1..])
        .map(|(a, b)| (node_by_name(sys, a), node_by_name(sys, b)))
        .collect();
    // Self-loop rendering (a single-name "cycle") only happens degenerately;
    // every real counterexample here has at least two nodes.
    assert!(!edges.is_empty(), "cycle {:?} has no edges", ex.cycle);
    match ex.phase {
        FailurePhase::ConflictConsistency => {
            for &(a, b) in &edges {
                assert!(
                    front.observed.contains(&(a, b)) || front.input.contains(&(a, b)),
                    "cycle edge {} -> {} is in neither the observed nor the input \
                     relation of the failing front",
                    sys.name(a),
                    sys.name(b)
                );
            }
        }
        FailurePhase::Calculation => {
            for &(big_a, big_b) in &edges {
                let witnessed = front.nodes.iter().any(|&a| {
                    front.nodes.iter().any(|&b| {
                        if !within(sys, big_a, a) || !within(sys, big_b, b) {
                            return false;
                        }
                        let norm = if a < b { (a, b) } else { (b, a) };
                        let gen_con = front.conflicts.contains(&norm);
                        if front.input.contains(&(a, b)) {
                            return true;
                        }
                        if gen_con && front.observed.contains(&(a, b)) {
                            return true;
                        }
                        // Same-schedule declared conflict, executed a-then-b.
                        sys.schedules()
                            .any(|s| s.conflicts.conflicts(a, b) && s.output.weak_lt(a, b))
                    })
                });
                assert!(
                    witnessed,
                    "contracted cycle edge {} -> {} has no witnessing constraint pair \
                     in the pre-step front",
                    sys.name(big_a),
                    sys.name(big_b)
                );
            }
        }
    }
}

/// Recomputes 1-minimality of the explanation's minimal root set: its
/// projection is still incorrect, and dropping any single root from it
/// yields a correct projection.
fn validate_minimal_roots(sys: &CompositeSystem, ex: &compc::core::Explanation) {
    assert!(
        !ex.minimal_roots.is_empty(),
        "minimization applies to every incorrect system"
    );
    let roots: Vec<NodeId> = ex
        .minimal_roots
        .iter()
        .map(|n| node_by_name(sys, n))
        .collect();
    let proj = sys
        .project_roots(&roots)
        .expect("minimal roots project to a valid system");
    assert!(
        !check(&proj).is_correct(),
        "projection onto the minimal root set must still be incorrect"
    );
    for drop in 0..roots.len() {
        let keep: Vec<NodeId> = roots
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != drop)
            .map(|(_, &r)| r)
            .collect();
        if keep.is_empty() {
            continue; // a single root cannot be dropped further
        }
        let sub = sys
            .project_roots(&keep)
            .expect("sub-projection of a valid projection");
        assert!(
            check(&sub).is_correct(),
            "dropping {} from the minimal set must make the projection correct \
             — the set was not 1-minimal",
            ex.minimal_roots[drop]
        );
    }
}

fn validate(sys: &CompositeSystem) {
    let cex = check(sys).counterexample().cloned().expect("incorrect");
    let ex = cex.explain(sys);
    validate_cycle(sys, &ex);
    validate_minimal_roots(sys, &ex);
}

/// Sweep random general systems, validating every incorrect one. The sweep
/// must encounter both failure phases, so the cycle check is exercised
/// against both the contracted constraint graph and the front relations.
#[test]
fn random_explanations_validate_against_the_definitions() {
    let mut incorrect = 0;
    let mut phases = (0, 0);
    for seed in 0..120u64 {
        let sys = generate(&GenParams {
            shape: Shape::General {
                levels: 3,
                scheds_per_level: 2,
            },
            roots: 3,
            ops_per_tx: (1, 2),
            conflict_density: 0.5,
            sequential_tx_prob: 0.7,
            client_input_prob: 0.2,
            strong_input_prob: 0.1,
            sound_abstractions: false,
            seed,
        });
        let Some(cex) = check(&sys).counterexample().cloned() else {
            continue;
        };
        incorrect += 1;
        match cex.phase {
            FailurePhase::Calculation => phases.0 += 1,
            FailurePhase::ConflictConsistency => phases.1 += 1,
        }
        validate(&sys);
    }
    assert!(
        incorrect >= 20,
        "population too tame to validate anything: {incorrect} incorrect"
    );
    assert!(
        phases.0 > 0,
        "no calculation failures seen in {incorrect} incorrect systems"
    );
}

/// A hand-built conflict-consistency failure (the mixed input/serialization
/// cycle of Definition 13), so the observed ∪ input cycle check always runs
/// even if the random sweep happens to produce only calculation failures.
#[test]
fn conflict_consistency_cycle_validates() {
    let mut b = SystemBuilder::new();
    let s = b.schedule("S");
    let t1 = b.root("T1", s);
    let t2 = b.root("T2", s);
    let t3 = b.root("T3", s);
    let t4 = b.root("T4", s);
    let o1 = b.leaf("o1", t1);
    let o2 = b.leaf("o2", t2);
    let o3 = b.leaf("o3", t3);
    let o4 = b.leaf("o4", t4);
    b.conflict(o1, o2).unwrap();
    b.output_weak(o1, o2).unwrap();
    b.conflict(o3, o4).unwrap();
    b.output_weak(o3, o4).unwrap();
    b.input_weak(t2, t3).unwrap();
    b.input_weak(t4, t1).unwrap();
    let sys = b.build().unwrap();
    let cex = check(&sys).counterexample().cloned().expect("incorrect");
    assert_eq!(cex.phase, FailurePhase::ConflictConsistency);
    validate(&sys);
}

/// Figure 3 (the paper's canonical incorrect configuration) explains with a
/// validated cycle and a validated minimal set.
#[test]
fn figure3_explanation_validates() {
    validate(&compc::workload::figures::figure3_incorrect().system);
}
