//! Gates on the exhaustive explorer itself (`crates/explore`).
//!
//! Three properties make the committed clean-sweep artifact meaningful:
//!
//! 1. **Soundness of the pruning** — at CI bounds, the naive enumeration
//!    of all interleavings groups into exactly the sleep-set classes and
//!    the engine verdict is constant within each class (`--naive` gates).
//! 2. **Power of the sweep** — an engine deliberately broken in the style
//!    of real historical bugs (a dropped conflict edge; the
//!    no-forgetting ablation) is *caught* by the same bounds the artifact
//!    was produced at. A clean sweep that cannot catch a planted bug
//!    proves nothing.
//! 3. **Prefix validity of session fragments** — every enumerated
//!    representative, cut into `SystemSpec::into_appends` fragments and
//!    replayed through `SpecSession`, yields a bit-identical verdict to a
//!    batch check after *every* fragment, and the final acceptance agrees
//!    with checking the original system directly.

use compc::session::SpecSession;
use compc::spec::SystemSpec;
use compc_core::{check, CheckOptions, Checker};
use compc_explore::{explore, explore_with_engine, representatives, Bounds, ExploreConfig, Shape};
use compc_model::CompositeSystem;

/// Small-but-real bounds: all three shapes, a few hundred composites.
fn gate_bounds() -> Bounds {
    Bounds {
        max_txns: 2,
        max_ops: 1,
        max_subtxs: 2,
        max_items: 1,
        max_nodes: 10,
        shapes: vec![
            Shape::Flat,
            Shape::Stack { bottoms: 1 },
            Shape::Stack { bottoms: 2 },
        ],
    }
}

#[test]
fn sweep_at_gate_bounds_is_clean_with_naive_cross_checks() {
    let cfg = ExploreConfig {
        bounds: gate_bounds(),
        naive: true,
        ..ExploreConfig::default()
    };
    let report = explore(&cfg);
    assert!(
        report.clean(),
        "gates: {:?}\ndisagreements: {:?}",
        report.gate_failures,
        report.disagreements
    );
    assert!(
        report.composites > 100,
        "population too small to mean anything"
    );
    assert!(
        report.incorrect > 0,
        "some enumerated programs must be non-Comp-C"
    );
    assert!(
        report.naive_composites >= report.composites,
        "naive product must dominate the pruned product"
    );
}

/// Re-checks a system with one conflict edge silently dropped — the effect
/// class of the historical self-edge bug (PR 5): a lost constraint edge
/// manufacturing phantom acceptances.
fn conflict_dropping_engine(sys: &CompositeSystem) -> bool {
    let mut spec = SystemSpec::from_system(sys);
    if spec.conflicts.is_empty() {
        return check(sys).is_correct();
    }
    spec.conflicts.remove(0);
    match spec.build() {
        Ok(weakened) => check(&weakened).is_correct(),
        Err(_) => check(sys).is_correct(),
    }
}

#[test]
fn sweep_catches_a_dropped_conflict_edge() {
    // One-op transactions are serializable under any conflict set, so this
    // mutant needs two-op programs to be observable; flat shapes alone
    // already contain the lost-update family that exposes it.
    let cfg = ExploreConfig {
        bounds: Bounds {
            max_ops: 2,
            shapes: vec![Shape::Flat],
            ..gate_bounds()
        },
        ..ExploreConfig::default()
    };
    let report = explore_with_engine(&cfg, Some(&conflict_dropping_engine));
    assert!(
        !report.disagreements.is_empty(),
        "a conflict-dropping engine must disagree with the oracle somewhere \
         within the sweep bounds — if it doesn't, the sweep has no power"
    );
    // The shrinker must have produced reproducers no larger than the
    // originals.
    for d in &report.disagreements {
        assert!(d.nodes_after <= d.nodes_before);
        assert_eq!(d.kind, "mutant");
    }
}

#[test]
fn sweep_catches_the_no_forgetting_ablation() {
    // Without Definition 10's order forgetting, pulled-up non-conflicting
    // same-schedule pairs keep their order and some Comp-C systems are
    // wrongly rejected. The sweep must expose that against the oracle.
    let ablated = |sys: &CompositeSystem| {
        Checker::with_options(CheckOptions::new().forgetting(false))
            .check(sys)
            .is_correct()
    };
    let cfg = ExploreConfig {
        bounds: gate_bounds(),
        ..ExploreConfig::default()
    };
    let report = explore_with_engine(&cfg, Some(&ablated));
    assert!(
        !report.disagreements.is_empty(),
        "the no-forgetting ablation must be caught within the sweep bounds"
    );
}

#[test]
fn every_representative_replays_prefix_valid_through_the_session() {
    let bounds = gate_bounds();
    let mut multi_fragment = 0usize;
    let systems = representatives(&bounds);
    assert!(systems.len() > 100);
    for sys in &systems {
        let fragments = SystemSpec::from_system(sys).into_appends();
        let verdicts = SpecSession::replay_bit_identical(&fragments, CheckOptions::default())
            .unwrap_or_else(|e| panic!("prefix replay failed: {e}"));
        assert_eq!(verdicts.len(), fragments.len());
        if fragments.len() > 1 {
            multi_fragment += 1;
        }
        // The merged replay may reorder declarations but must agree on
        // acceptance with a direct check of the original system.
        let direct = check(sys).is_correct();
        assert_eq!(
            verdicts.last().unwrap().is_correct(),
            direct,
            "merge-reordered replay disagrees with the original order"
        );
    }
    assert!(
        multi_fragment > 0,
        "some representatives must split into fragments"
    );
}
