//! Chaos properties of the fault-injection subsystem: whatever a random
//! fault plan does to a random simulated workload — crashes, transient op
//! failures, stalls, dropped lock releases — the committed work the engine
//! exports must still be a valid Comp-C composite schedule, and the whole
//! faulted run must replay identically from the same seed and plan.
//!
//! A failing case prints its sampled inputs in the panic message; rerun it
//! with `cargo test -q --test fault_chaos` after pinning the seed in a
//! regular `#[test]`, and record it in `tests/fault_chaos.proptest-regressions`.

use compc::core::check;
use compc::sim::{Engine, FaultPlan, LockScope, Protocol, SimConfig, SimReport};
use compc::workload::random_sim::{generate_sim, SimGenParams};
use proptest::prelude::*;

fn faulted_run(workload_seed: u64, plan_seed: u64, clients: usize, semantic: bool) -> SimReport {
    let params = SimGenParams {
        seed: workload_seed,
        clients,
        semantic,
        ..SimGenParams::default()
    };
    let (topo, templates) = generate_sim(
        &params,
        Protocol::TwoPhase {
            scope: LockScope::Composite,
        },
    );
    let components = topo.len();
    Engine::new(
        topo,
        templates,
        SimConfig {
            seed: workload_seed,
            ..SimConfig::default()
        },
    )
    .faults(FaultPlan::random(plan_seed, components, 250))
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The recovery invariant: every faulted run exports a composite
    /// schedule of its committed work that passes the Comp-C check.
    #[test]
    fn faulted_runs_always_export_comp_c_schedules(
        workload_seed in 0u64..1_000,
        plan_seed in 0u64..1_000,
        clients in 3usize..8,
        semantic in proptest::bool::ANY,
    ) {
        let report = faulted_run(workload_seed, plan_seed, clients, semantic);
        prop_assert_eq!(
            report.metrics.committed + report.metrics.failed,
            clients as u64
        );
        let sys = report
            .export_system()
            .unwrap_or_else(|e| panic!("export failed: {e}"));
        prop_assert!(
            check(&sys).is_correct(),
            "faulted run exported a non-Comp-C schedule"
        );
    }

    /// Determinism: the same workload seed and the same fault plan produce
    /// the same fault events, counters and committed work, tick for tick.
    #[test]
    fn faulted_runs_replay_identically_from_seed_and_plan(
        workload_seed in 0u64..1_000,
        plan_seed in 0u64..1_000,
    ) {
        let a = faulted_run(workload_seed, plan_seed, 5, false);
        let b = faulted_run(workload_seed, plan_seed, 5, false);
        prop_assert_eq!(a.faults.len(), b.faults.len());
        for (x, y) in a.faults.iter().zip(&b.faults) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(x.comp, y.comp);
            prop_assert_eq!(x.tx, y.tx);
            prop_assert_eq!(x.time, y.time);
        }
        prop_assert_eq!(a.fault_stats, b.fault_stats);
        prop_assert_eq!(a.metrics.committed, b.metrics.committed);
        prop_assert_eq!(a.metrics.aborts, b.metrics.aborts);
        prop_assert_eq!(a.metrics.end_time, b.metrics.end_time);
    }

    /// Distinct failure accounting: when transient op failures are the only
    /// enabled fault, every abort is a fault abort and exhausted
    /// transactions surface as `failed`, never as deadlock victims.
    #[test]
    fn op_failure_aborts_never_masquerade_as_deadlocks(
        workload_seed in 0u64..500,
    ) {
        let params = SimGenParams {
            seed: workload_seed,
            clients: 4,
            ..SimGenParams::default()
        };
        let (topo, templates) = generate_sim(
            &params,
            Protocol::TwoPhase { scope: LockScope::Composite },
        );
        let report = Engine::new(
            topo,
            templates,
            SimConfig { seed: workload_seed, ..SimConfig::default() },
        )
        .faults(FaultPlan::new(workload_seed).op_failures(1.0))
        .run();
        prop_assert_eq!(report.metrics.committed, 0);
        prop_assert_eq!(report.metrics.failed, 4);
        prop_assert_eq!(report.metrics.deadlock_aborts, 0);
        prop_assert_eq!(report.metrics.aborts, report.metrics.fault_aborts);
    }
}
