//! Verdict equivalence of the parallel checking engine.
//!
//! The within-level parallelization splits index ranges into contiguous
//! chunks and reassembles results in order, so every `jobs` value must give
//! not just the same accept/reject answer but the *identical* verdict —
//! same fronts, same serial witness, same counterexample cycle. These tests
//! pin that down on random systems across shapes, densities and input
//! orders, at `jobs ∈ {1, 2, 8}`, and additionally require that minimized
//! counterexamples classify identically under every `jobs` value.

use compc::core::{check, minimize, CheckOptions, Checker, FrontSnapshot, Verdict};
use compc::engine::{Batch, BatchItem};
use compc::workload::random::{generate, GenParams, Shape};
use proptest::prelude::*;

fn params(shape: Shape, roots: usize, density: f64, orders: f64, seed: u64) -> GenParams {
    GenParams {
        shape,
        roots,
        ops_per_tx: (1, 3),
        conflict_density: density,
        sequential_tx_prob: 0.7,
        client_input_prob: orders,
        strong_input_prob: orders / 2.0,
        sound_abstractions: false,
        seed,
    }
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Stack { depth: 3 }),
        Just(Shape::Fork { branches: 3 }),
        Just(Shape::Join { branches: 3 }),
        Just(Shape::General {
            levels: 3,
            scheds_per_level: 2
        }),
        Just(Shape::General {
            levels: 4,
            scheds_per_level: 2
        }),
    ]
}

fn snapshot_fingerprint(f: &FrontSnapshot) -> String {
    format!(
        "L{}|{:?}|{:?}|{:?}|{:?}",
        f.level, f.nodes, f.observed, f.conflicts, f.input
    )
}

/// Everything observable about a verdict, as comparable data.
fn fingerprint(v: &Verdict) -> String {
    match v {
        Verdict::Correct(p) => format!(
            "correct|witness={:?}|fronts={:?}",
            p.serial_witness,
            p.fronts
                .iter()
                .map(snapshot_fingerprint)
                .collect::<Vec<_>>()
        ),
        Verdict::Incorrect(c) => format!(
            "incorrect|level={}|phase={:?}|cycle={:?}",
            c.level, c.phase, c.cycle
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The parallel checker is observationally identical to the sequential
    /// one: same proof or same counterexample, bit for bit, at every jobs
    /// count.
    #[test]
    fn parallel_verdict_identical_to_sequential(
        seed in 0u64..100_000,
        shape in arb_shape(),
        roots in 2usize..=6,
        density in 0u8..=90,
        orders in 0u8..=30,
    ) {
        let sys = generate(&params(
            shape,
            roots,
            density as f64 / 100.0,
            orders as f64 / 100.0,
            seed,
        ));
        let baseline = fingerprint(&check(&sys));
        for jobs in [1usize, 2, 8] {
            let v = Checker::with_options(CheckOptions::new().jobs(jobs)).check(&sys);
            prop_assert_eq!(
                &fingerprint(&v),
                &baseline,
                "verdict diverged at jobs={}", jobs
            );
        }
    }

    /// Minimized counterexamples classify identically under every jobs
    /// value: the shrunken core is still rejected, in the same phase at the
    /// same level, whether checked sequentially or in parallel.
    #[test]
    fn minimized_counterexamples_classify_identically(
        seed in 0u64..100_000,
        roots in 3usize..=6,
        density in 40u8..=90,
    ) {
        let sys = generate(&params(
            Shape::General { levels: 3, scheds_per_level: 2 },
            roots,
            density as f64 / 100.0,
            0.0,
            seed,
        ));
        let v = check(&sys);
        prop_assume!(!v.is_correct());
        let min = minimize(&sys).expect("incorrect systems minimize");
        let base = fingerprint(&check(&min.system));
        prop_assert!(base.starts_with("incorrect"), "minimized core must stay broken");
        for jobs in [1usize, 2, 8] {
            let mv = Checker::with_options(CheckOptions::new().jobs(jobs)).check(&min.system);
            prop_assert_eq!(
                &fingerprint(&mv),
                &base,
                "minimized classification diverged at jobs={}", jobs
            );
        }
    }

    /// The batch engine preserves per-item verdicts exactly, regardless of
    /// worker count and per-check jobs.
    #[test]
    fn batch_outcomes_identical_to_solo_checks(
        seed in 0u64..100_000,
        density in 0u8..=90,
    ) {
        let systems: Vec<_> = (0..6u64)
            .map(|i| generate(&params(
                Shape::General { levels: 3, scheds_per_level: 2 },
                4,
                density as f64 / 100.0,
                0.0,
                seed.wrapping_add(i * 9973),
            )))
            .collect();
        let solo: Vec<String> = systems.iter().map(|s| fingerprint(&check(s))).collect();
        for (workers, jobs) in [(1usize, 1usize), (4, 1), (2, 2)] {
            let items: Vec<BatchItem> = systems
                .iter()
                .enumerate()
                .map(|(i, s)| BatchItem::new(format!("sys-{i}"), s.clone()))
                .collect();
            let report = Batch::with_options(CheckOptions::new().jobs(jobs))
                .workers(workers)
                .check_all(items);
            let got: Vec<String> = report
                .outcomes
                .iter()
                .map(|o| fingerprint(o.verdict().expect("no faults in this batch")))
                .collect();
            prop_assert_eq!(&got, &solo, "workers={} jobs={}", workers, jobs);
        }
    }
}
