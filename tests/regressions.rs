//! Named promotions of every recorded `*.proptest-regressions` seed.
//!
//! The `.proptest-regressions` files make proptest re-run historical
//! failures, but only inside their own property and only with the proptest
//! harness's RNG plumbing in the loop. These tests pin the shrunk inputs as
//! plain `#[test]`s, so each historical incident has a name, runs in every
//! tier-1 invocation, and fails with a message that points at the original
//! finding rather than a proptest case number.
//!
//! The `*.proptest-regressions` files themselves have been deleted: every
//! seed they recorded is pinned below (the original `cc` lines are quoted
//! in the section headers), so keeping the files would only let the two
//! copies drift apart. New proptest failures should be promoted here the
//! same way and the generated file removed.

use compc::configs::{is_fcc, is_jcc};
use compc::core::{check, Reducer};
use compc::model::{CompositeSystem, SchedId};
use compc::sim::{Engine, FaultPlan, LockScope, Protocol, SimConfig, SimReport};
use compc::workload::random::{generate, GenParams, Shape};
use compc::workload::random_sim::{generate_sim, SimGenParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// tests/confluence.proptest-regressions
//   cc 8737514d… # shrinks to seed = 0, order_seed = 102
// ---------------------------------------------------------------------

/// A random invocation-respecting schedule order (children of the
/// invocation DAG first) — the shape under test in `tests/confluence.rs`.
fn reduction_order(sys: &CompositeSystem, seed: u64) -> Vec<SchedId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ig = sys.invocation_graph();
    let mut remaining: Vec<usize> = (0..sys.schedule_count()).collect();
    let mut done = vec![false; sys.schedule_count()];
    let mut order = Vec::new();
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&s| ig.successors(s).all(|t| done[t]))
            .collect();
        let pick = *ready.as_slice().choose(&mut rng).unwrap();
        done[pick] = true;
        remaining.retain(|&s| s != pick);
        order.push(SchedId(pick as u32));
    }
    order
}

fn check_schedulewise(sys: &CompositeSystem, order: &[SchedId]) -> bool {
    let mut red = Reducer::new(sys);
    if red.front().is_cc().is_some() {
        return false;
    }
    for (i, &sid) in order.iter().enumerate() {
        if red.step_schedules(&[sid], i + 1).is_err() {
            return false;
        }
    }
    true
}

/// Historical divergence between the canonical level-by-level reduction and
/// a schedule-at-a-time order at `seed = 0, order_seed = 102`. Density was
/// free in the shrunk case, so the pin sweeps the range's corners and
/// middle.
#[test]
fn confluence_seed0_order102_all_densities() {
    for density in [0u8, 45, 90] {
        let sys = generate(&GenParams {
            shape: Shape::General {
                levels: 3,
                scheds_per_level: 2,
            },
            roots: 4,
            ops_per_tx: (1, 3),
            conflict_density: density as f64 / 100.0,
            sequential_tx_prob: 0.7,
            client_input_prob: 0.2,
            strong_input_prob: 0.2,
            sound_abstractions: false,
            seed: 0,
        });
        let canonical = check(&sys).is_correct();
        let order = reduction_order(&sys, 102);
        assert_eq!(
            canonical,
            check_schedulewise(&sys, &order),
            "confluence regression (seed 0, order_seed 102, density {density}) reopened"
        );
    }
}

// ---------------------------------------------------------------------
// tests/fault_chaos.proptest-regressions
//   cc 3f1a6c09… # shrinks to workload_seed = 341, plan_seed = 77,
//                  clients = 5, semantic = false
// ---------------------------------------------------------------------

fn faulted_run(workload_seed: u64, plan_seed: u64, clients: usize, semantic: bool) -> SimReport {
    let params = SimGenParams {
        seed: workload_seed,
        clients,
        semantic,
        ..SimGenParams::default()
    };
    let (topo, templates) = generate_sim(
        &params,
        Protocol::TwoPhase {
            scope: LockScope::Composite,
        },
    );
    let components = topo.len();
    Engine::new(
        topo,
        templates,
        SimConfig {
            seed: workload_seed,
            ..SimConfig::default()
        },
    )
    .faults(FaultPlan::random(plan_seed, components, 250))
    .run()
}

/// A crash landing mid-commit while a dropped release was still under lease
/// (workload 341, plan 77): the committed work must still export a valid
/// Comp-C schedule, and the run must replay identically.
#[test]
fn fault_chaos_crash_mid_commit_under_lease() {
    let report = faulted_run(341, 77, 5, false);
    assert_eq!(report.metrics.committed + report.metrics.failed, 5);
    let sys = report
        .export_system()
        .unwrap_or_else(|e| panic!("export failed: {e}"));
    assert!(
        check(&sys).is_correct(),
        "fault-chaos regression (341/77/5) exported a non-Comp-C schedule"
    );
    let replay = faulted_run(341, 77, 5, false);
    assert_eq!(report.metrics.committed, replay.metrics.committed);
    assert_eq!(report.fault_stats, replay.fault_stats);
}

// ---------------------------------------------------------------------
// tests/theorems.proptest-regressions
//   cc 60d65aae… # shrinks to seed = 0,    branches = 4, roots = 2, density = 0
//   cc 8c25bb91… # shrinks to seed = 104,  branches = 4, roots = 5, density = 23
//   cc 6a09c753… # shrinks to seed = 1561, branches = 4, roots = 5, density = 3
// ---------------------------------------------------------------------

fn sound_params(shape: Shape, roots: usize, density: f64, seed: u64) -> GenParams {
    GenParams {
        shape,
        roots,
        ops_per_tx: (1, 3),
        conflict_density: density,
        sequential_tx_prob: 0.7,
        client_input_prob: 0.0,
        strong_input_prob: 0.0,
        sound_abstractions: true,
        seed,
    }
}

/// The recorded theorem seeds came from the shared fork/join property
/// sweep, so each is pinned against both bodies: FCC ⟺ Comp-C on the fork
/// and JCC ⟺ Comp-C on the join built from the same inputs.
#[test]
fn theorem_seeds_hold_on_forks_and_joins() {
    for (seed, branches, roots, density) in [(0, 4, 2, 0u8), (104, 4, 5, 23), (1561, 4, 5, 3)] {
        let d = density as f64 / 100.0;
        let fork = generate(&sound_params(Shape::Fork { branches }, roots, d, seed));
        let fcc = is_fcc(&fork).expect("generator produces fork shapes");
        assert_eq!(
            fcc,
            check(&fork).is_correct(),
            "thm3 regression (seed {seed}, branches {branches}, roots {roots}, \
             density {density}) reopened on the fork"
        );
        let join = generate(&sound_params(Shape::Join { branches }, roots, d, seed));
        let jcc = is_jcc(&join).expect("generator produces join shapes");
        assert_eq!(
            jcc,
            check(&join).is_correct(),
            "thm4 regression (seed {seed}, branches {branches}, roots {roots}, \
             density {density}) reopened on the join"
        );
    }
}
