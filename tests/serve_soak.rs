//! A short, seeded run of the `serve-soak` kill-anywhere crash-recovery
//! harness, as a regular test: the daemon is SIGKILLed at random points
//! while a resilient client streams appends, and the harness asserts zero
//! acked-append loss plus bit-identical post-recovery verdicts. The CI
//! `serve-soak` stage and local runs scale the same binary up to hundreds
//! of kills.

use std::process::Command;

#[test]
fn mini_soak_survives_a_dozen_random_kills() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve-soak"))
        .args([
            "--kills",
            "12",
            "--seed",
            "1999",
            "--roots",
            "12",
            "--daemon",
            env!("CARGO_BIN_EXE_compc-serve"),
        ])
        .output()
        .expect("serve-soak runs");
    assert!(
        out.status.success(),
        "soak failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("zero acked-append loss"),
        "summary asserts the contract: {stdout}"
    );
}
