//! A short, seeded run of the `serve-soak` kill-anywhere crash-recovery
//! harness, as a regular test: the daemon — running with a write-ahead
//! journal, group commit, and two dispatch shards — is SIGKILLed at
//! random points (including mid-commit-batch) while concurrent clients
//! stream appends into the legacy default session and a named one. The
//! harness asserts zero acked-append loss, no phantom appends beyond what
//! was delivered, and bit-identical post-recovery verdicts. The CI
//! `serve-soak` stage and local runs scale the same binary up to hundreds
//! of kills.

use std::process::Command;

#[test]
fn mini_soak_survives_a_dozen_random_kills() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve-soak"))
        .args([
            "--kills",
            "12",
            "--seed",
            "1999",
            "--roots",
            "12",
            "--clients",
            "2",
            "--commit-batch",
            "8",
            "--dispatch-shards",
            "2",
            "--daemon",
            env!("CARGO_BIN_EXE_compc-serve"),
        ])
        .output()
        .expect("serve-soak runs");
    assert!(
        out.status.success(),
        "soak failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("zero acked-append loss"),
        "summary asserts the contract: {stdout}"
    );
    assert!(
        stdout.contains("commit batch 8, 2 shard(s)"),
        "summary names the batched, sharded configuration: {stdout}"
    );
}
