//! Differential pinning of the incremental session against batch checking.
//!
//! The contract under test (DESIGN.md §8): feeding a system to a
//! [`SpecSession`] fragment-by-fragment — one fragment per root subtree,
//! via [`SystemSpec::into_appends`] — produces, after every prefix, a
//! verdict *bit-identical* (full `Debug` structure: every front snapshot,
//! the serial witness, the counterexample cycle) to a from-scratch batch
//! check of the same merged prefix system. Pinned on the committed
//! 16-file adversarial corpus, on random generated systems under proptest,
//! across the sparse and dense closure backends, and against the
//! brute-force oracle on systems within its node cap.

use compc::core::{Backend, CheckOptions, Checker, Verdict};
use compc::session::SpecSession;
use compc::spec::SystemSpec;
use compc::workload::random::{generate, GenParams, Shape};
use proptest::prelude::*;
use std::path::Path;

/// Everything observable about a verdict. `Debug` covers the whole proof
/// (all front snapshots + witness) or counterexample (level, phase, cycle),
/// so equality here is bit-identity of the structures.
fn fingerprint(v: &Verdict) -> String {
    format!("{v:?}")
}

/// Replays `spec` through an incremental session with `options`, asserting
/// after every fragment that the incremental verdict equals a from-scratch
/// check of the session's merged system. Returns the final verdict.
fn replay_and_pin(spec: &SystemSpec, options: CheckOptions, context: &str) -> Verdict {
    let fragments = spec.into_appends();
    assert!(!fragments.is_empty(), "{context}: no fragments");
    let mut session = SpecSession::with_options(options);
    for (k, fragment) in fragments.iter().enumerate() {
        let incremental = session
            .append(fragment)
            .unwrap_or_else(|e| {
                panic!(
                    "{context}: fragment {}/{} rejected: {e}",
                    k + 1,
                    fragments.len()
                )
            })
            .clone();
        let prefix = session.system().expect("append installed a system");
        let batch = Checker::with_options(options).check(prefix);
        assert_eq!(
            fingerprint(&incremental),
            fingerprint(&batch),
            "{context}: prefix {}/{} diverged from batch",
            k + 1,
            fragments.len()
        );
    }
    session.verdict().expect("at least one append").clone()
}

/// Every committed corpus file, prefix-by-prefix, on both forced backends.
/// The filename encodes the expected acceptance (`.correct.json` /
/// `.incorrect.json`), so the replay is also checked against ground truth.
#[test]
fn corpus_replays_bit_identically_on_both_backends() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    files.sort();
    assert!(files.len() >= 16, "corpus shrank: {} files", files.len());
    for file in files {
        let name = file.file_name().unwrap().to_string_lossy().to_string();
        let expect_correct = name.ends_with(".correct.json");
        let text = std::fs::read_to_string(&file).unwrap();
        let spec = SystemSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{name}: corpus file must parse: {e}"));
        for backend in [Backend::Sparse, Backend::Dense] {
            let context = format!("{name} [{backend}]");
            let verdict = replay_and_pin(&spec, CheckOptions::new().backend(backend), &context);
            assert_eq!(
                verdict.is_correct(),
                expect_correct,
                "{context}: replayed acceptance contradicts the filename"
            );
        }
    }
}

/// An interrupted replay resumes: cancelling the session interrupts the
/// first append, and re-sending the same fragment after clearing the token
/// completes — landing on the same verdict an uninterrupted replay reaches.
#[test]
fn corpus_replay_resumes_after_interruption() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/figure3.incorrect.json");
    let spec = SystemSpec::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    let fragments = spec.into_appends();

    let mut session = SpecSession::new();
    session
        .cancel_token()
        .store(true, std::sync::atomic::Ordering::Relaxed);
    let err = session.append(&fragments[0]).unwrap_err();
    assert!(err.is_interrupted(), "cancel must interrupt: {err}");
    assert!(session.verdict().is_none());

    session
        .cancel_token()
        .store(false, std::sync::atomic::Ordering::Relaxed);
    for fragment in &fragments {
        session.append(fragment).unwrap();
    }
    let batch = Checker::new().check(session.system().unwrap());
    assert_eq!(
        fingerprint(session.verdict().unwrap()),
        fingerprint(&batch),
        "resumed replay must still be bit-identical"
    );
    assert!(!session.verdict().unwrap().is_correct());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random layered systems: append-order replay is bit-identical to the
    /// batch check at every prefix, on auto, forced-sparse and forced-dense
    /// backends.
    #[test]
    fn random_systems_replay_bit_identically(
        seed in 0u64..100_000,
        roots in 2usize..=6,
        density in 0u8..=90,
    ) {
        let sys = generate(&GenParams {
            shape: Shape::General { levels: 3, scheds_per_level: 2 },
            roots,
            ops_per_tx: (1, 3),
            conflict_density: density as f64 / 100.0,
            sequential_tx_prob: 0.7,
            client_input_prob: 0.0,
            strong_input_prob: 0.0,
            sound_abstractions: false,
            seed,
        });
        let spec = SystemSpec::from_system(&sys);
        for backend in [Backend::Auto, Backend::Sparse, Backend::Dense] {
            let context = format!("seed {seed} [{backend}]");
            replay_and_pin(&spec, CheckOptions::new().backend(backend), &context);
        }
    }

    /// Small random systems, cross-checked against the brute-force oracle:
    /// the replayed incremental verdict agrees with the definitional
    /// decision on the merged system.
    #[test]
    fn small_replays_agree_with_the_oracle(
        seed in 0u64..100_000,
        roots in 2usize..=4,
        density in 0u8..=80,
    ) {
        let sys = generate(&GenParams {
            shape: Shape::General { levels: 2, scheds_per_level: 2 },
            roots,
            ops_per_tx: (1, 2),
            conflict_density: density as f64 / 100.0,
            sequential_tx_prob: 0.8,
            client_input_prob: 0.0,
            strong_input_prob: 0.0,
            sound_abstractions: false,
            seed,
        });
        prop_assume!(sys.node_count() <= compc::oracle::RECOMMENDED_NODE_CAP);
        let spec = SystemSpec::from_system(&sys);
        let mut session = SpecSession::with_options(CheckOptions::new().oracle(true));
        for fragment in &spec.into_appends() {
            // SpecSession's own oracle hook cross-checks every prefix; an
            // OracleDisagreement error here would fail the test.
            session.append(fragment).unwrap();
        }
        let merged = session.system().unwrap();
        prop_assert_eq!(
            session.verdict().unwrap().is_correct(),
            compc::oracle::decide(merged).accepted(),
            "seed {}: replayed verdict contradicts the oracle", seed
        );
    }
}
