//! Simulator → checker round trips: which protocols guarantee Comp-C on
//! which configurations (the E11 experiment's assertions).

use compc::core::check;
use compc::sim::{Engine, LockScope, Protocol, SimConfig};
use compc::workload::scenarios::{
    banking_tpmonitor, enterprise_diamond, federated_travel, inventory_join, Scenario,
};

fn run(s: Scenario, seed: u64) -> compc::sim::SimReport {
    Engine::new(
        s.topology,
        s.templates,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    )
    .run()
}

/// Outcome of checking one simulated run.
#[derive(PartialEq, Debug, Clone, Copy)]
enum Outcome {
    CompC,
    NotCompC,
    ModelViolation,
}

fn outcome(report: &compc::sim::SimReport) -> Outcome {
    match report.export_system() {
        Err(_) => Outcome::ModelViolation,
        Ok(sys) => {
            if check(&sys).is_correct() {
                Outcome::CompC
            } else {
                Outcome::NotCompC
            }
        }
    }
}

/// Closed (composite-scope) 2PL is globally rigorous: every run on every
/// scenario is Comp-C.
#[test]
fn closed_2pl_always_comp_c() {
    let p = Protocol::TwoPhase {
        scope: LockScope::Composite,
    };
    for seed in 0..8 {
        for scenario in [
            banking_tpmonitor(p, 10, 4, seed),
            federated_travel(p, 10, 3, seed),
            inventory_join(p, 10, 3, seed),
            enterprise_diamond(p, 8, 3, seed),
        ] {
            let name = scenario.name;
            let report = run(scenario, seed);
            assert!(report.metrics.committed > 0, "{name}: nothing committed");
            assert_eq!(
                outcome(&report),
                Outcome::CompC,
                "{name} seed {seed}: closed 2PL must be Comp-C"
            );
        }
    }
}

/// Globally timestamped TO is also always Comp-C — every component
/// serializes in the same global order.
#[test]
fn timestamp_ordering_always_comp_c() {
    for seed in 0..8 {
        for scenario in [
            banking_tpmonitor(Protocol::Timestamp, 10, 4, seed),
            federated_travel(Protocol::Timestamp, 10, 3, seed),
            inventory_join(Protocol::Timestamp, 10, 3, seed),
            enterprise_diamond(Protocol::Timestamp, 8, 3, seed),
        ] {
            let name = scenario.name;
            let report = run(scenario, seed);
            assert_eq!(
                outcome(&report),
                Outcome::CompC,
                "{name} seed {seed}: TO must be Comp-C"
            );
        }
    }
}

/// Open (subtransaction-scope) 2PL on the *stack* scenario is the classical
/// multilevel-transactions setting: the shared top component coordinates the
/// roots, so runs stay Comp-C.
#[test]
fn open_2pl_on_stack_is_comp_c() {
    let p = Protocol::TwoPhase {
        scope: LockScope::Subtransaction,
    };
    for seed in 0..10 {
        let report = run(banking_tpmonitor(p, 10, 4, seed), seed);
        assert_eq!(
            outcome(&report),
            Outcome::CompC,
            "multilevel 2PL on a stack must be Comp-C (seed {seed})"
        );
    }
}

/// The chaos baseline gets flagged: under contention, across seeds, at least
/// one run is caught as a model violation or a Comp-C counterexample — and
/// the flag rate dwarfs that of the real protocols (which is zero).
#[test]
fn chaos_runs_get_flagged() {
    let mut flagged = 0;
    for seed in 0..25 {
        let report = run(banking_tpmonitor(Protocol::None, 10, 2, seed), seed);
        if outcome(&report) != Outcome::CompC {
            flagged += 1;
        }
    }
    assert!(
        flagged > 0,
        "25 contended no-CC runs must produce at least one flagged execution"
    );
}

/// SGT keeps each component locally *serializable* but — being optimistic —
/// does not enforce the *input orders* a component receives (Definition 3
/// obedience), so some runs surface as model violations rather than Comp-C
/// proofs. This mirrors the paper's point that composite components need
/// order-aware scheduling ([ABFS97]'s CC scheduler), not just local
/// serializability. The checker must classify every run, some runs must be
/// genuinely Comp-C, and disobedient runs must be *flagged*, never silently
/// accepted as incorrect-but-valid serializable executions.
#[test]
fn sgt_runs_classified_and_sometimes_comp_c() {
    let mut comp_c = 0;
    let mut flagged = 0;
    for seed in 0..30 {
        let report = run(banking_tpmonitor(Protocol::Sgt, 10, 4, seed), seed);
        match outcome(&report) {
            Outcome::CompC => comp_c += 1,
            Outcome::ModelViolation | Outcome::NotCompC => flagged += 1,
        }
    }
    // With region-level conflicts at the monitor, almost every contended
    // SGT run disobeys some input order; low-contention seeds still slip
    // through obediently.
    assert!(comp_c > 0, "SGT should produce some Comp-C runs");
    assert!(flagged > 0, "SGT disobedience should be caught");
    assert_eq!(comp_c + flagged, 30);
}

/// Throughput sanity: the chaos baseline never blocks, so it commits at
/// least as many transactions as closed 2PL on the same workload.
#[test]
fn chaos_commits_at_least_as_much_as_locking() {
    for seed in 0..5 {
        let locked = run(
            banking_tpmonitor(
                Protocol::TwoPhase {
                    scope: LockScope::Composite,
                },
                12,
                4,
                seed,
            ),
            seed,
        );
        let chaos = run(banking_tpmonitor(Protocol::None, 12, 4, seed), seed);
        assert!(chaos.metrics.committed >= locked.metrics.committed);
    }
}

/// Semantic tables admit more concurrency: increment-heavy workloads under
/// semantic locking must not abort and must commit everything.
#[test]
fn semantic_locking_admits_increment_concurrency() {
    let p = Protocol::TwoPhase {
        scope: LockScope::Subtransaction,
    };
    for seed in 0..5 {
        let scenario = federated_travel(p, 12, 2, seed);
        let report = run(scenario, seed);
        assert_eq!(report.metrics.committed, 12);
        assert_eq!(
            report.metrics.aborts, 0,
            "decrements commute; no aborts expected"
        );
        let sys = report.export_system().unwrap();
        assert!(check(&sys).is_correct());
    }
}

/// The paper's CC scheduler: optimistic like SGT but *obedient* — it delays
/// operations until input-order predecessors commit, so exports never
/// violate the model, and on stacks every run is Comp-C.
#[test]
fn cc_scheduler_is_obedient_and_comp_c_on_stacks() {
    for seed in 0..12 {
        let report = run(banking_tpmonitor(Protocol::CcSched, 10, 4, seed), seed);
        assert!(report.metrics.committed > 0);
        assert_eq!(
            outcome(&report),
            Outcome::CompC,
            "CC scheduler on a stack must be Comp-C (seed {seed})"
        );
    }
}

/// CC scheduler across all scenarios: never a model violation (obedience is
/// structural), and every run classified.
#[test]
fn cc_scheduler_never_violates_the_model() {
    for seed in 0..6 {
        for scenario in [
            banking_tpmonitor(Protocol::CcSched, 8, 4, seed),
            federated_travel(Protocol::CcSched, 8, 3, seed),
            inventory_join(Protocol::CcSched, 8, 3, seed),
            enterprise_diamond(Protocol::CcSched, 6, 3, seed),
        ] {
            let name = scenario.name;
            let report = run(scenario, seed);
            assert_ne!(
                outcome(&report),
                Outcome::ModelViolation,
                "{name} seed {seed}: the CC scheduler must honor input orders"
            );
        }
    }
}

/// State-based validation: replaying the committed transactions serially in
/// the witness order reproduces the simulator's final store state — the
/// semantic meaning of "equivalent to a serial execution of the roots".
#[test]
fn serial_witness_replay_reproduces_store_state() {
    let p = Protocol::TwoPhase {
        scope: LockScope::Composite,
    };
    for seed in 0..10 {
        for scenario in [
            banking_tpmonitor(p, 10, 4, seed),
            inventory_join(p, 10, 3, seed),
            enterprise_diamond(p, 8, 3, seed),
        ] {
            let name = scenario.name;
            let report = run(scenario, seed);
            let (sys, roots) = report.export_with_roots().expect("valid export");
            let proof = match check(&sys) {
                compc::core::Verdict::Correct(p) => p,
                compc::core::Verdict::Incorrect(c) => {
                    panic!("{name} seed {seed}: closed 2PL must be Comp-C: {c}")
                }
            };
            let order: Vec<u32> = proof.serial_witness.iter().map(|n| roots[n]).collect();
            let replayed = report.replay_serially(&order);
            assert_eq!(
                replayed, report.stores,
                "{name} seed {seed}: witness replay must reproduce the final state"
            );
        }
    }
}

/// An arbitrary (non-witness) serial order generally does NOT reproduce the
/// state on write-heavy workloads — the replay check is not vacuous.
#[test]
fn replay_check_is_not_vacuous() {
    let p = Protocol::TwoPhase {
        scope: LockScope::Composite,
    };
    let mut differs = 0;
    for seed in 0..10 {
        let scenario = banking_tpmonitor(p, 10, 2, seed);
        let report = run(scenario, seed);
        let (sys, roots) = report.export_with_roots().expect("valid export");
        let proof = check(&sys);
        let proof = proof.proof().expect("closed 2PL is Comp-C");
        let mut order: Vec<u32> = proof.serial_witness.iter().map(|n| roots[n]).collect();
        order.reverse();
        if report.replay_serially(&order) != report.stores {
            differs += 1;
        }
    }
    assert!(
        differs > 0,
        "reversing the witness should change some final state"
    );
}

/// The theory trusts each component's conflict declaration (§2: a schedule
/// that declares no conflict "knows" commutativity). If a component
/// UNDER-declares — here, monitor-level call specs that claim disjoint
/// footprints while both subtransactions write the same database item — the
/// checker can certify an execution whose serial witness does NOT reproduce
/// the real final state. This is a property of the model, not a bug: sound
/// (over-approximate) abstractions are a prerequisite, which is why the
/// bundled scenarios use exact or region-coarse specs.
#[test]
fn unsound_abstraction_breaks_state_equivalence() {
    use compc::model::{CommutativityTable, ItemId, OpSpec};
    use compc::sim::{Topology, TxNode, TxTemplate};

    let mut mismatches = 0;
    for seed in 0..20 {
        let mut topo = Topology::new();
        let monitor = topo.add("monitor", Protocol::Sgt, CommutativityTable::read_write());
        let db = topo.add("db", Protocol::Sgt, CommutativityTable::read_write());
        // Both calls *claim* disjoint items (7 vs 8) at the monitor but
        // write the same item 3 at the database.
        let lying_call = |claim: u32| {
            TxNode::call(
                db,
                OpSpec::write(ItemId(claim)),
                vec![TxNode::data(OpSpec::write(ItemId(3)))],
            )
        };
        let templates = vec![
            TxTemplate {
                name: "liar-a".into(),
                home: monitor,
                body: vec![lying_call(7)],
            },
            TxTemplate {
                name: "liar-b".into(),
                home: monitor,
                body: vec![lying_call(8)],
            },
        ];
        let report = Engine::new(
            topo,
            templates,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        )
        .run();
        let Ok((sys, roots)) = report.export_with_roots() else {
            continue;
        };
        let Some(proof) = check(&sys).proof().cloned() else {
            continue;
        };
        let order: Vec<u32> = proof.serial_witness.iter().map(|n| roots[n]).collect();
        if report.replay_serially(&order) != report.stores {
            mismatches += 1;
        }
    }
    assert!(
        mismatches > 0,
        "under-declared conflicts must eventually produce a certified-but-\
         state-divergent execution"
    );
}

/// The practical protocol-placement question, answered *negatively*:
/// upgrading only the shared components (pricing and both stores) to
/// timestamp ordering is NOT enough on the diamond, because the application
/// servers themselves schedule conflicting call operations (the
/// region-coarse footprints make every quote conflict at its app) — an
/// unsynchronized app produces genuinely non-serializable local orders of
/// its own. Protection must cover every component that declares conflicts;
/// the checker distinguishes all three regimes.
#[test]
fn protocol_placement_must_cover_every_conflicting_component() {
    use compc::workload::scenarios::heterogeneous_diamond;
    let (mut none_ok, mut partial_ok, mut full_ok) = (0, 0, 0);
    for seed in 0..10 {
        let none = run(
            heterogeneous_diamond(Protocol::None, Protocol::Timestamp, false, 10, 3, seed),
            seed,
        );
        none_ok += (outcome(&none) == Outcome::CompC) as u32;
        let partial = run(
            heterogeneous_diamond(Protocol::None, Protocol::Timestamp, true, 10, 3, seed),
            seed,
        );
        partial_ok += (outcome(&partial) == Outcome::CompC) as u32;
        let full = run(
            heterogeneous_diamond(Protocol::Timestamp, Protocol::Timestamp, true, 10, 3, seed),
            seed,
        );
        full_ok += (outcome(&full) == Outcome::CompC) as u32;
    }
    assert_eq!(full_ok, 10, "TO everywhere composes");
    assert!(
        partial_ok < 10,
        "shared-only protection must leak app-level anomalies"
    );
    assert!(none_ok < 10, "no protection must be flagged");
    assert!(partial_ok <= full_ok && none_ok <= full_ok);
}
