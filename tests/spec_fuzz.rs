//! Robustness of the JSON spec layer: arbitrary (garbage) specs must never
//! panic — every failure mode is a typed error.

use compc::spec::{NodeSpec, SystemSpec};
use proptest::prelude::*;

/// A short random lowercase identifier (1–4 chars), built from combinators
/// so the strategy needs no regex support.
fn arb_word() -> impl Strategy<Value = String> {
    (1usize..=4, 0u32..26, 0u32..26, 0u32..26, 0u32..26).prop_map(|(len, a, b, c, d)| {
        [a, b, c, d][..len]
            .iter()
            .map(|&x| char::from(b'a' + x as u8))
            .collect()
    })
}

fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("S".to_string()),
        Just("missing".to_string()),
        arb_word(),
    ]
}

fn arb_node() -> impl Strategy<Value = NodeSpec> {
    (
        arb_name(),
        prop_oneof![
            Just("root".to_string()),
            Just("subtx".to_string()),
            Just("leaf".to_string()),
            Just("bogus".to_string()),
        ],
        proptest::option::of(arb_name()),
        proptest::option::of(arb_name()),
    )
        .prop_map(|(name, kind, parent, home)| NodeSpec {
            name,
            kind,
            parent,
            home,
        })
}

fn arb_pairs() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((arb_name(), arb_name()), 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `SystemSpec::build` is total: any input yields `Ok` or a typed
    /// error, never a panic.
    #[test]
    fn arbitrary_specs_never_panic(
        schedules in proptest::collection::vec(arb_name(), 0..4),
        nodes in proptest::collection::vec(arb_node(), 0..8),
        conflicts in arb_pairs(),
        output_weak in arb_pairs(),
        output_strong in arb_pairs(),
        input_weak in arb_pairs(),
        tx_weak in arb_pairs(),
        auto_propagate in proptest::bool::ANY,
    ) {
        let spec = SystemSpec {
            version: 1,
            schedules,
            nodes,
            conflicts,
            output_weak,
            output_strong,
            input_weak,
            input_strong: vec![],
            tx_weak,
            tx_strong: vec![],
            auto_propagate,
        };
        // Either outcome is fine; panicking is not.
        let _ = spec.build();
        // And serialization round-trips regardless of validity.
        let json = spec.to_json().to_compact();
        let back = SystemSpec::parse(&json).unwrap();
        prop_assert_eq!(spec, back);
    }
}
