//! The paper's theorems as property tests.
//!
//! * **Theorem 1** — reduction success ⟺ Comp-C, with the serial witness as
//!   a checkable certificate.
//! * **Theorem 2** — SCC ⟺ Comp-C on stacks.
//! * **Theorem 3** — FCC ⟺ Comp-C on forks.
//! * **Theorem 4** — JCC ⟺ Comp-C on joins.
//! * Flat embedding — CSR ⟺ Comp-C on one-level systems.
//! * The contraction-based calculation check ⟺ the brute-force
//!   linearization search (Definition 14/16 cross-validation).

use compc::configs::{is_fcc, is_jcc, is_scc};
use compc::core::{calculations_exist_bruteforce, check, FailurePhase, Reducer};
use compc::model::NodeId;
use compc::workload::random::{generate, GenParams, Shape};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn params(shape: Shape, roots: usize, density: f64, seed: u64) -> GenParams {
    GenParams {
        shape,
        roots,
        ops_per_tx: (1, 3),
        conflict_density: density,
        sequential_tx_prob: 0.7,
        client_input_prob: 0.0,
        strong_input_prob: 0.0,
        sound_abstractions: false,
        seed,
    }
}

fn params_sound(shape: Shape, roots: usize, density: f64, seed: u64) -> GenParams {
    GenParams {
        sound_abstractions: true,
        ..params(shape, roots, density, seed)
    }
}

fn params_with_orders(
    shape: Shape,
    roots: usize,
    density: f64,
    client: f64,
    strong: f64,
    seed: u64,
) -> GenParams {
    GenParams {
        client_input_prob: client,
        strong_input_prob: strong,
        ..params(shape, roots, density, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Theorem 2: on stack configurations the direct SCC criterion and the
    /// general reduction agree, for every depth, contention level and seed.
    #[test]
    fn thm2_scc_iff_comp_c(
        seed in 0u64..100_000,
        depth in 2usize..=4,
        roots in 2usize..=5,
        density in 0u8..=90,
    ) {
        let sys = generate(&params(
            Shape::Stack { depth },
            roots,
            density as f64 / 100.0,
            seed,
        ));
        let scc = is_scc(&sys);
        let comp_c = check(&sys).is_correct();
        prop_assert_eq!(scc, comp_c, "SCC={} Comp-C={} seed={}", scc, comp_c, seed);
    }

    /// Theorem 3: FCC ⟺ Comp-C on forks.
    #[test]
    fn thm3_fcc_iff_comp_c(
        seed in 0u64..100_000,
        branches in 2usize..=4,
        roots in 2usize..=5,
        density in 0u8..=90,
    ) {
        let sys = generate(&params_sound(
            Shape::Fork { branches },
            roots,
            density as f64 / 100.0,
            seed,
        ));
        let fcc = is_fcc(&sys).expect("generator produces fork shapes");
        let comp_c = check(&sys).is_correct();
        prop_assert_eq!(fcc, comp_c, "FCC={} Comp-C={} seed={}", fcc, comp_c, seed);
    }

    /// Theorem 4: JCC ⟺ Comp-C on joins.
    #[test]
    fn thm4_jcc_iff_comp_c(
        seed in 0u64..100_000,
        branches in 2usize..=4,
        roots in 2usize..=6,
        density in 0u8..=90,
    ) {
        let sys = generate(&params_sound(
            Shape::Join { branches },
            roots,
            density as f64 / 100.0,
            seed,
        ));
        let jcc = is_jcc(&sys).expect("generator produces join shapes");
        let comp_c = check(&sys).is_correct();
        prop_assert_eq!(jcc, comp_c, "JCC={} Comp-C={} seed={}", jcc, comp_c, seed);
    }

    /// Theorem 1 (constructive direction): a successful reduction yields a
    /// serial witness — a permutation of the roots extending every observed
    /// and input pair of the final front.
    #[test]
    fn thm1_serial_witness_is_a_certificate(
        seed in 0u64..100_000,
        density in 0u8..=90,
    ) {
        let sys = generate(&params(
            Shape::General { levels: 3, scheds_per_level: 2 },
            4,
            density as f64 / 100.0,
            seed,
        ));
        if let Some(proof) = check(&sys).proof() {
            let mut roots: Vec<NodeId> = sys.roots().collect();
            let mut witness = proof.serial_witness.clone();
            let pos: BTreeMap<NodeId, usize> = witness
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, i))
                .collect();
            witness.sort_unstable();
            roots.sort_unstable();
            prop_assert_eq!(&witness, &roots, "witness must be a permutation of the roots");
            let last = proof.fronts.last().unwrap();
            for &(a, b) in last.observed.iter().chain(last.input.iter()) {
                prop_assert!(
                    pos[&a] < pos[&b],
                    "witness violates required order {:?} < {:?}",
                    a, b
                );
            }
        }
    }

    /// The verdict is deterministic.
    #[test]
    fn verdicts_are_deterministic(seed in 0u64..100_000) {
        let sys = generate(&params(
            Shape::General { levels: 3, scheds_per_level: 2 },
            4,
            0.5,
            seed,
        ));
        prop_assert_eq!(check(&sys).is_correct(), check(&sys).is_correct());
    }

    /// Definition 14/16 cross-validation: at every reduction step the
    /// contraction verdict matches an exhaustive search for simultaneous
    /// isolated execution sequences.
    #[test]
    fn calculation_contraction_matches_bruteforce(
        seed in 0u64..100_000,
        density in 0u8..=90,
    ) {
        // Small systems: the brute force is exponential in front size.
        let sys = generate(&GenParams {
            shape: Shape::General { levels: 3, scheds_per_level: 2 },
            roots: 3,
            ops_per_tx: (1, 2),
            conflict_density: density as f64 / 100.0,
            sequential_tx_prob: 0.5,
                client_input_prob: 0.0,
                strong_input_prob: 0.0,
                sound_abstractions: false,
            seed,
        });
        let mut red = Reducer::new(&sys);
        for level in 1..=sys.order() {
            let groups: BTreeMap<NodeId, NodeId> = sys
                .schedules_at_level(level)
                .flat_map(|s| {
                    s.transactions
                        .iter()
                        .flat_map(|t| t.ops.iter().map(move |&o| (o, t.id)))
                })
                .collect();
            let front = red.front();
            let nodes: Vec<NodeId> = front.nodes.iter().copied().collect();
            prop_assume!(nodes.len() <= 14); // keep the search tractable
            let constraint = front.constraint_graph(&sys);
            let expected = calculations_exist_bruteforce(&nodes, &constraint, &groups);
            match red.step(level) {
                Ok(()) => prop_assert!(
                    expected,
                    "contraction passed level {} but brute force finds no calculation",
                    level
                ),
                Err(cex) if cex.phase == FailurePhase::Calculation => {
                    prop_assert!(
                        !expected,
                        "contraction failed level {} but a calculation exists",
                        level
                    );
                    break;
                }
                Err(_) => {
                    // Conflict-consistency failure after replacement: the
                    // calculations themselves existed.
                    prop_assert!(expected);
                    break;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 2 under the full Definition-1 order spectrum: stacks with
    /// client-imposed weak AND strong input orders still satisfy
    /// SCC ⟺ Comp-C.
    #[test]
    fn thm2_holds_with_client_and_strong_orders(
        seed in 0u64..100_000,
        density in 0u8..=90,
        client in 0u8..=80,
        strong in 0u8..=80,
    ) {
        let sys = generate(&params_with_orders(
            Shape::Stack { depth: 3 },
            4,
            density as f64 / 100.0,
            client as f64 / 100.0,
            strong as f64 / 100.0,
            seed,
        ));
        sys.validate().expect("generator output must validate");
        prop_assert_eq!(is_scc(&sys), check(&sys).is_correct());
    }

    /// Strong input orders are honored end to end: every generated system
    /// with strong client orders validates Definition 3 axiom 3, and in
    /// correct systems the serial witness places strongly ordered roots in
    /// the required direction.
    #[test]
    fn strong_orders_respected_in_witness(
        seed in 0u64..100_000,
        density in 0u8..=60,
    ) {
        let sys = generate(&params_with_orders(
            Shape::General { levels: 3, scheds_per_level: 2 },
            4,
            density as f64 / 100.0,
            0.6,
            1.0, // all client orders strong
            seed,
        ));
        sys.validate().expect("valid");
        if let Some(proof) = check(&sys).proof() {
            let pos: BTreeMap<NodeId, usize> = proof
                .serial_witness
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, i))
                .collect();
            for s in sys.schedules() {
                for (a, b) in s.input.strong_pairs() {
                    // Strong pairs between roots must appear in witness
                    // order (others have been reduced away).
                    if let (Some(&pa), Some(&pb)) = (pos.get(&a), pos.get(&b)) {
                        prop_assert!(pa < pb, "strong order {a} ≪ {b} violated by witness");
                    }
                }
            }
        }
    }
}

/// The equivalences must not be vacuous: both verdicts appear in each
/// population.
#[test]
fn populations_are_nonvacuous() {
    for shape in [
        Shape::Stack { depth: 3 },
        Shape::Fork { branches: 3 },
        Shape::Join { branches: 3 },
    ] {
        let mut correct = 0;
        let mut incorrect = 0;
        for seed in 0..200 {
            let sys = generate(&params(shape, 4, 0.6, seed));
            if check(&sys).is_correct() {
                correct += 1;
            } else {
                incorrect += 1;
            }
        }
        assert!(correct > 0, "{shape:?}: no correct executions");
        assert!(incorrect > 0, "{shape:?}: no incorrect executions");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Minimized counterexamples are still incorrect and 1-minimal.
    #[test]
    fn minimizer_produces_1_minimal_cores(
        seed in 0u64..100_000,
        density in 30u8..=90,
    ) {
        use compc::core::minimize;
        let sys = generate(&params(
            Shape::General { levels: 3, scheds_per_level: 2 },
            5,
            density as f64 / 100.0,
            seed,
        ));
        if let Some(min) = minimize(&sys) {
            prop_assert!(!check(&min.system).is_correct());
            // Note: a SINGLE composite transaction can violate Comp-C all by
            // itself — its unordered sibling subtrees may interleave
            // inconsistently across shared lower schedules, so no
            // calculation for it exists. The minimizer legitimately returns
            // singletons in that case.
            prop_assert!(!min.roots.is_empty());
            // 1-minimality: removing any single root makes it correct.
            for i in 0..min.roots.len() {
                let mut fewer = min.roots.clone();
                fewer.remove(i);
                if fewer.is_empty() { continue; }
                let proj = sys.project_roots(&fewer).expect("projection builds");
                prop_assert!(
                    check(&proj).is_correct(),
                    "dropping {:?} should fix a 1-minimal core",
                    min.roots[i]
                );
            }
        }
    }
}

/// The fine print of Theorem 4: the JCC ⟺ Comp-C equivalence relies on the
/// upper schedules' conflict declarations *soundly abstracting* the join
/// schedule's real conflicts. With an unsound population (conflicts
/// sprinkled independently per level), a same-branch pair can interact at
/// the join while its upper schedule claims commutativity; the pulled-up
/// order is forgotten at the top, but Definition 10's transitivity routes
/// the dependency across branches and the reduction (rightly) rejects,
/// while JCC — whose ghost graph only sees cross-branch pairs — accepts.
/// This pins the concrete divergent instance as a regression anchor.
#[test]
fn thm4_fine_print_unsound_abstractions_diverge() {
    let mut found_divergence = false;
    for seed in 0..4000 {
        let sys = generate(&GenParams {
            shape: Shape::Join { branches: 4 },
            roots: 5,
            ops_per_tx: (1, 3),
            conflict_density: 0.03,
            sequential_tx_prob: 0.7,
            client_input_prob: 0.0,
            strong_input_prob: 0.0,
            sound_abstractions: false, // the crucial bit
            seed,
        });
        let jcc = compc::configs::is_jcc(&sys).expect("join shaped");
        let comp_c = check(&sys).is_correct();
        if jcc != comp_c {
            // The divergence must be one-sided: JCC trusting an unsound
            // abstraction accepts; the reduction rejects.
            assert!(jcc && !comp_c, "seed {seed}: unexpected direction");
            found_divergence = true;
            break;
        }
    }
    assert!(
        found_divergence,
        "the unsound-abstraction divergence should be reproducible"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Comp-C is downward closed under transaction removal: projecting a
    /// correct system onto any root subset stays correct (constraints only
    /// shrink). The converse direction is exactly what the minimizer
    /// exploits: projections of incorrect systems may become correct.
    #[test]
    fn correctness_is_downward_closed(
        seed in 0u64..100_000,
        density in 0u8..=60,
        drop_idx in 0usize..8,
    ) {
        let sys = generate(&params(
            Shape::General { levels: 3, scheds_per_level: 2 },
            5,
            density as f64 / 100.0,
            seed,
        ));
        if check(&sys).is_correct() {
            let roots: Vec<_> = sys.roots().collect();
            prop_assume!(roots.len() > 1);
            let mut keep = roots.clone();
            keep.remove(drop_idx % keep.len());
            let proj = sys.project_roots(&keep).expect("projection builds");
            prop_assert!(
                check(&proj).is_correct(),
                "removing a transaction cannot break correctness (seed {})",
                seed
            );
        }
    }
}
