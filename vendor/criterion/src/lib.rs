//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, dependency-free timing harness under the same crate name. It
//! keeps criterion's API shape — [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], `criterion_group!`/`criterion_main!`,
//! [`black_box`] — but replaces the statistics engine with a simple
//! warmup-then-measure loop that reports the mean wall-clock time per
//! iteration. Good enough to compare configurations on the same machine,
//! which is all the in-repo benches do.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value/computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Target warmup time per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(60);

/// Times closures handed to it via [`Bencher::iter`].
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `f`, storing the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One probe call to size the batches.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));

        let warmup_iters = (WARMUP_TARGET.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000);
        for _ in 0..warmup_iters {
            black_box(f());
        }

        let measure_iters =
            (MEASURE_TARGET.as_nanos() / probe.as_nanos()).clamp(1, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..measure_iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / measure_iters as f64;
        self.iters = measure_iters;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, run: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        mean_ns: 0.0,
        iters: 0,
    };
    run(&mut bencher);
    println!(
        "{label:<60} time: {:>12}   ({} iters)",
        format_ns(bencher.mean_ns),
        bencher.iters
    );
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timing loop is
    /// self-sizing, so the requested sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no-op).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A function-name/parameter pair identifying one benchmark.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Identifier `"{function}/{parameter}"`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
