//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, dependency-free property-testing harness under the same crate
//! name. It keeps proptest's *shape* — the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! range/tuple/`Just` strategies, [`collection::vec`], [`option::of`],
//! [`bool::ANY`], `prop_oneof!`, and the `prop_assert*` family — but not its
//! engine: cases are drawn from a deterministic per-test PRNG and failures
//! are reported without shrinking. Every failure message includes the
//! sampled inputs and the case number so a failing case can be reproduced by
//! reading the panic message.
//!
//! The number of cases defaults to 256, is configurable per-block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and can be globally
//! overridden with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bounds accepted by [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` about a quarter of the time, else
    /// `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Boolean strategies (`ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `bool` strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Commonly-imported items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a `proptest!` body; on failure the case inputs
/// are reported and the test fails without unwinding through user code.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)*), a, b
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skip the current case if an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, ys in collection::vec(0u64..5, 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let name_seed = $crate::test_runner::hash_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(name_seed, case as u64);
                let mut case_desc = String::new();
                $(
                    let sampled = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    case_desc.push_str(&format!(
                        "{} = {:?}; ", stringify!($pat), &sampled
                    ));
                    let $pat = sampled;
                )+
                let outcome: ::core::result::Result<(), String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, cases, msg, case_desc
                    );
                }
            }
        }
    )*};
}
