//! The [`Strategy`] trait and the combinators this workspace uses.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy is
/// just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy, cheap to clone.
pub struct BoxedStrategy<V> {
    inner: std::rc::Rc<dyn DynStrategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<V: Debug> Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.inner.sample_dyn(rng)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
#[derive(Clone, Debug)]
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> OneOf<V> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
