//! Per-test configuration and the deterministic case PRNG.

/// Configuration for one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to actually run, honoring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a hash of a test's fully qualified name, used as a stable seed base
/// so each property gets an independent, reproducible stream.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic SplitMix64 stream for one test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for case number `case` of the test hashed to `name_seed`.
    pub fn for_case(name_seed: u64, case: u64) -> Self {
        TestRng {
            state: name_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `lo..=hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi as u64 - lo as u64 + 1)) as usize
    }
}
