//! Offline stand-in for the parts of `rand 0.8` this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, dependency-free implementation under the same crate name. The
//! generator is xoshiro256++ seeded via SplitMix64 — deterministic, fast, and
//! statistically solid for property tests and workload generation. It does
//! *not* reproduce the exact byte stream of upstream `StdRng` (ChaCha12);
//! every consumer in this repository only relies on determinism for a fixed
//! seed, not on a specific sequence.
//!
//! Surface provided: [`Rng`] (`gen_range`, `gen_bool`, `gen`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (only [`rngs::StdRng`] is provided).
pub mod rngs {
    /// A deterministic xoshiro256++ generator, standing in for rand's
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for `StdRng`).
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s == [0; 4] {
            // xoshiro must not be seeded with all zeros.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard2 {
    /// Draw a uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics if the range is empty.
    fn sample_single(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next() as u128) % span;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next() as u128) % span;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from an integer (or `f64`) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: AsStdRng,
    {
        range.sample_single(self.as_std_rng())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform draw of a `Standard2`-sampleable type.
    fn gen<T: Standard2>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::sample(self.as_std_rng())
    }
}

/// Internal helper so `Rng`'s provided methods can reach the concrete state.
pub trait AsStdRng {
    /// View self as the concrete generator.
    fn as_std_rng(&mut self) -> &mut StdRng;
}

impl AsStdRng for StdRng {
    #[inline]
    fn as_std_rng(&mut self) -> &mut StdRng {
        self
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl Standard2 for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next()
    }
}

impl Standard2 for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next() & 1 == 1
    }
}

impl Standard2 for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{Rng, StdRng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly pick a reference to one element, or `None` if empty.
        fn choose(&self, rng: &mut StdRng) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose(&self, rng: &mut StdRng) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Commonly-imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: u32 = rng.gen_range(0..=10);
            assert!(z <= 10);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.as_slice().choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
